"""Concurrent batch execution over a shared merged graph (§V).

The paper notes the multi-query path "features high parallelization":
once ``G_mg`` is built, queries are independent, so a batch should run
on real worker threads rather than the analytical bin-packing model
(:func:`repro.core.pipeline.estimate_parallel_latency`, now a fallback
for the single-worker path).

:class:`BatchExecutor` runs scheduled query graphs on a
``ThreadPoolExecutor``.  Each worker thread owns a private
:class:`~repro.simtime.SimClock` *shard* (so simulated charging is
race-free) and a private :class:`QueryGraphExecutor`, while all
workers share one thread-safe :class:`KeyCentricCache` and one
:class:`ExecutorStats` collector.  After the batch, the shards yield
two simulated figures — the **aggregate** (total simulated work, the
sum over shards) and the **makespan** (the busiest lane, what a
parallel deployment would actually wait for) — reported alongside the
measured wall-clock seconds of the run itself.

Answers are returned in input order regardless of submission order or
thread interleaving, and per-query latencies stay in simulated
seconds, so the Figure 10/11 benchmarks keep their meaning under
concurrency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.core.aggregator import MergedGraph
from repro.core.answer import Answer, fallback_answer
from repro.core.cache import KeyCentricCache
from repro.core.executor import ExecutorConfig, QueryGraphExecutor
from repro.core.spoc import QueryGraph, QuestionType
from repro.core.stats import ExecutorStats
from repro.errors import ReproError
from repro.locks import note_fork, note_join, note_write, wrap_lock
from repro.observability.spans import Tracer, maybe_trace
from repro.resilience.events import FaultEvent
from repro.simtime import SimClock

if TYPE_CHECKING:
    from repro.core.planner import PlanOverlay
    from repro.resilience.manager import ResilienceManager
    from repro.retrieval.config import RetrievalConfig


@dataclass
class BatchResult:
    """What one concurrent batch run produced and cost."""

    answers: list[Answer]          # input order
    latencies: list[float]         # simulated seconds per query
    simulated_total: float         # sum over clock shards
    simulated_makespan: float      # busiest lane (what a user waits for)
    wall_clock: float              # measured seconds for the whole run
    workers: int
    shards: list[SimClock]         # one per worker lane actually used

    @property
    def shard_elapsed(self) -> list[float]:
        """Per-lane simulated seconds."""
        return [clock.elapsed for clock in self.shards]

    @property
    def speedup(self) -> float:
        """Simulated speedup: total work over the busiest lane."""
        if self.simulated_makespan <= 0:
            return 1.0
        return self.simulated_total / self.simulated_makespan

    def merge_into(self, clock: SimClock) -> None:
        """Fold every shard's charges (time *and* operation counts)
        into an aggregate clock."""
        for shard in self.shards:
            clock.merge(shard)


class BatchExecutor:
    """Runs batches of query graphs on a configurable worker pool.

    With ``workers=1`` the batch runs serially in the calling thread
    (fully deterministic — the fallback path).  With ``workers>1``
    every pool thread lazily creates its own executor + clock shard on
    first use; query graphs are submitted in the given order, so a
    frequency-ratio schedule still primes the shared cache early.
    """

    def __init__(
        self,
        merged: MergedGraph,
        cache: KeyCentricCache | None = None,
        config: ExecutorConfig | None = None,
        workers: int = 1,
        costs: dict[str, float] | None = None,
        stats: ExecutorStats | None = None,
        resilience: ResilienceManager | None = None,
        tracer: Tracer | None = None,
        plan_overlay: PlanOverlay | None = None,
        retrieval: RetrievalConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.merged = merged
        self.cache = cache if cache is not None \
            else KeyCentricCache.disabled()
        self.config = config
        self.workers = workers
        self.costs = costs
        self.stats = stats if stats is not None else ExecutorStats()
        self.resilience = resilience
        self.tracer = tracer
        # frozen shared-sub-plan results from the planner's share
        # phase, handed to every per-thread executor (None = no planner)
        self.plan_overlay = plan_overlay
        # retrieval-tier config handed to every per-thread executor
        # (None = the exact pre-retrieval code path)
        self.retrieval = retrieval

    def _new_shard(self) -> SimClock:
        if self.costs is not None:
            return SimClock(costs=dict(self.costs))
        return SimClock()

    def run(
        self,
        graphs: list[QueryGraph | None],
        order: list[int] | None = None,
        trace_ids: list[str] | None = None,
        deadlines: list[float | None] | None = None,
    ) -> BatchResult:
        """Execute the graphs; ``None`` entries answer ``"unknown"``.

        ``order`` is the submission order (e.g. a
        :func:`~repro.core.scheduler.schedule_queries` plan); results
        always come back in input order.  With a tracer attached,
        ``trace_ids`` names each slot's trace (defaults to
        ``q0000``-style input indices); each query records into its
        worker's private segment buffer, merged at segment close.
        ``deadlines`` gives each slot its own simulated-seconds budget
        (``None`` entries are unbounded): a deadline-killed slot stays
        filled — and aligned — with the best partial (degraded) answer
        instead of dropping out of the batch.
        """
        indices = list(order) if order is not None \
            else list(range(len(graphs)))
        if deadlines is not None and len(deadlines) != len(graphs):
            raise ValueError(
                f"deadlines must align with graphs: "
                f"{len(deadlines)} != {len(graphs)}"
            )
        answers: list[Answer | None] = [None] * len(graphs)
        latencies = [0.0] * len(graphs)
        shards: list[SimClock] = []
        shard_lock = wrap_lock(threading.Lock(), "batch.shards")
        local = threading.local()

        def run_one(index: int) -> None:
            graph = graphs[index]
            if graph is None:
                answers[index] = Answer(QuestionType.REASONING,
                                        "unknown")
                return
            executor = getattr(local, "executor", None)
            if executor is None:
                clock = self._new_shard()
                with shard_lock:
                    note_write("batch.shards")
                    shards.append(clock)
                executor = QueryGraphExecutor(
                    self.merged, cache=self.cache, clock=clock,
                    config=self.config, stats=self.stats,
                    resilience=self.resilience,
                    tracer=self.tracer,
                    plan_overlay=self.plan_overlay,
                    retrieval=self.retrieval,
                )
                local.executor = executor
            trace_id = trace_ids[index] if trace_ids is not None \
                else f"q{index:04d}"
            deadline_limit = deadlines[index] \
                if deadlines is not None else None
            start = executor.clock.snapshot()
            with maybe_trace(self.tracer, trace_id, executor.clock):
                try:
                    answer = executor.execute(
                        graph, deadline_limit=deadline_limit)
                except ReproError as exc:
                    # fail soft per query, never hard per batch: the
                    # slot stays filled (and aligned) and the event
                    # says why
                    try:
                        qtype = graph.question_type
                    except ValueError:
                        qtype = QuestionType.REASONING
                    answer = fallback_answer(qtype, [
                        FaultEvent("executor.execute", "error",
                                   detail=f"{type(exc).__name__}: {exc}"),
                    ])
                    self.stats.record_degraded()
            answer.latency = start.interval
            self.stats.record_latency(answer.latency)
            # each slot has exactly one writer; the parent reads only
            # after the pool joins (fork/join happens-before edges)
            note_write("batch.answers", index)
            answers[index] = answer
            latencies[index] = answer.latency

        wall_start = time.perf_counter()
        if self.workers == 1:
            for index in indices:
                run_one(index)
        else:
            note_fork()
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(run_one, i) for i in indices]
                for future in futures:
                    future.result()
            note_join()
        wall_clock = time.perf_counter() - wall_start

        shard_elapsed = [clock.elapsed for clock in shards]
        # every slot was filled by run_one (absorbed failures included),
        # so answers stay index-aligned with latencies and the inputs
        return BatchResult(
            answers=[a if a is not None
                     else Answer(QuestionType.REASONING, "unknown")
                     for a in answers],
            latencies=latencies,
            simulated_total=sum(shard_elapsed),
            simulated_makespan=max(shard_elapsed, default=0.0),
            wall_clock=wall_clock,
            workers=self.workers,
            shards=shards,
        )
