"""Clause segmentation from the dependency tree (§IV-B, step 1).

A clause is identified by its verbal head: the tree root (main clause)
plus every ``acl`` / ``acl:relcl`` dependent (relative clauses, full or
reduced).  Each clause records its *antecedent* — the noun its
relativizer refers to — which drives both pronoun replacement ("who"
-> "wizard") and the query-graph dependency edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.depparse import DependencyTree


@dataclass(frozen=True)
class Clause:
    """One clause of the complex query.

    ``head`` is the clause's verbal head token index; ``antecedent``
    the modified noun's index for relative clauses (None for the main
    clause); ``depth`` the nesting level (main = 0).
    """

    head: int
    depth: int
    antecedent: int | None
    is_main: bool


def segment_clauses(tree: DependencyTree) -> list[Clause]:
    """All clauses of the question, main clause first, outside-in.

    >>> from repro.nlp import parse
    >>> tree = parse("Does the dog that is holding the frisbee appear "
    ...              "in front of the man?")
    >>> [c.is_main for c in segment_clauses(tree)]
    [True, False]
    """
    clauses = [Clause(tree.root, 0, None, True)]
    depth_of = {tree.root: 0}
    # relative clauses, discovered breadth-first so depth is correct
    frontier = [tree.root]
    while frontier:
        current = frontier.pop(0)
        for index, (head, label) in enumerate(zip(tree.heads, tree.labels, strict=True)):
            if label not in {"acl", "acl:relcl"}:
                continue
            if index in depth_of:
                continue
            # the antecedent noun must live inside the current clause's
            # span of influence; we approximate by walking up from the
            # antecedent to the nearest known clause head
            owner = _owning_clause(tree, head, depth_of)
            if owner != current:
                continue
            depth = depth_of[current] + 1
            clauses.append(Clause(index, depth, head, False))
            depth_of[index] = depth
            frontier.append(index)
    return clauses


def _owning_clause(
    tree: DependencyTree, index: int, clause_heads: dict[int, int]
) -> int | None:
    """Walk up the tree from ``index`` to the nearest clause head."""
    current = index
    seen = set()
    while current != -1 and current not in seen:
        seen.add(current)
        if current in clause_heads:
            return current
        current = tree.heads[current]
    return None


def clause_token_span(tree: DependencyTree, clause: Clause,
                      all_clauses: list[Clause]) -> list[int]:
    """Token indices belonging to this clause (its subtree minus nested
    clause subtrees)."""
    nested_heads = [
        c.head for c in all_clauses
        if c.head != clause.head and _descends_from(tree, c.head, clause.head)
    ]
    excluded: set[int] = set()
    for head in nested_heads:
        excluded.update(tree.subtree(head))
    return [i for i in tree.subtree(clause.head) if i not in excluded]


def _descends_from(tree: DependencyTree, index: int, ancestor: int) -> bool:
    current = tree.heads[index]
    while current != -1:
        if current == ancestor:
            return True
        current = tree.heads[current]
    return False
