"""Answer types and ``getFinalanswer`` (Algorithm 3, line 19).

Three question types (§V): judgment (yes/no), counting (a number), and
reasoning (an entity/category name).  The answer object also carries
its supporting relation pairs so examples can show *why* an answer was
produced.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.graph import RelationPair
from repro.resilience.events import FaultEvent
from repro.core.spoc import QuestionType, SPOC


@dataclass
class Answer:
    """The final answer to a complex query.

    ``degraded`` marks answers the resilience layer salvaged from a
    partial failure (keyword-match parse fallback, deadline cutoff,
    absorbed crash); ``confidence`` drops below 1.0 on those rungs and
    ``fault_events`` carries the full provenance of what went wrong.
    """

    question_type: QuestionType
    value: str
    support: list[RelationPair] = field(default_factory=list)
    latency: float | None = None
    degraded: bool = False
    confidence: float = 1.0
    fault_events: list[FaultEvent] = field(default_factory=list)

    @property
    def supporting_images(self) -> list[int]:
        """Distinct image ids among the supporting relation pairs."""
        images = {
            pair.edge.props.get("image_id")
            for pair in self.support
            if pair.edge.props.get("image_id") is not None
        }
        return sorted(images)

    def __str__(self) -> str:
        """The bare answer string."""
        return self.value


def fallback_answer(
    question_type: QuestionType,
    events: list[FaultEvent],
    confidence: float = 0.0,
) -> Answer:
    """An attributed ``"unknown"``: the degradation ladder's last rung.

    Used when a query could not be executed at all (parse rejection,
    executor crash, deadline cutoff before the main clause) — the slot
    stays filled and aligned, and the events say why.
    """
    return Answer(
        question_type,
        "unknown",
        [],
        degraded=True,
        confidence=confidence,
        fault_events=list(events),
    )


def final_answer(
    spoc: SPOC,
    pairs: list[RelationPair],
    kind_filter: Callable[[str, str], bool] | None = None,
    kind_min_images: int = 3,
) -> Answer:
    """Aggregate the main clause's answer pairs into an Answer.

    ``kind_filter(label, ancestor)`` decides, for "kind of X" answer
    terms, whether a candidate label is a kind of X (injected by the
    executor so the check can consult the merged graph's ``is a``
    hierarchy).
    """
    qtype = spoc.question_type or QuestionType.REASONING
    term = spoc.slot(spoc.answer_role)

    if qtype is QuestionType.JUDGMENT:
        value = "yes" if pairs else "no"
        return Answer(qtype, value, pairs)

    answer_vertices = [
        pair.subject if spoc.answer_role == "subject" else pair.object
        for pair in pairs
    ]

    if qtype is QuestionType.COUNTING:
        if term is not None and term.kind_of:
            # kind counting ignores labels with single-image support —
            # one hallucinated edge must not add a "kind"
            images_per_label: dict[str, set] = {}
            for pair, vertex in zip(pairs, answer_vertices, strict=True):
                evidence = pair.edge.props.get("image_id", pair.edge.id)
                images_per_label.setdefault(vertex.label,
                                            set()).add(evidence)
            count = sum(1 for images in images_per_label.values()
                        if len(images) >= kind_min_images)
        else:
            count = len({v.id for v in answer_vertices})
        return Answer(qtype, str(count), pairs)

    # reasoning: most-supported candidate label
    labels = [v.label for v in answer_vertices
              if v.props.get("kind") != "concept" or v.label]
    if term is not None and term.kind_of and kind_filter is not None:
        labels = [
            label for label in labels
            if label.lower() != term.head.lower()
            and kind_filter(label, term.head)
        ]
    if not labels:
        return Answer(qtype, "unknown", [])
    winner = Counter(labels).most_common(1)[0][0]
    support = [
        pair for pair, vertex in zip(pairs, answer_vertices, strict=True)
        if vertex.label == winner
    ]
    return Answer(qtype, winner, support)
