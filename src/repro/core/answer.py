"""Answer types and ``getFinalanswer`` (Algorithm 3, line 19).

Three question types (§V): judgment (yes/no), counting (a number), and
reasoning (an entity/category name).  The answer object also carries
its supporting relation pairs so examples can show *why* an answer was
produced.

:meth:`Answer.to_dict` is the **single** stable JSON shape of an
answer — the ``POST /ask`` response body of the serving layer and the
``--json`` output of the ``repro ask`` / ``repro chaos`` CLIs all
emit exactly this dict, so the wire contract cannot fork per surface.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.graph import RelationPair
from repro.resilience.events import FaultEvent
from repro.core.spoc import QuestionType, SPOC


@dataclass
class Answer:
    """The final answer to a complex query.

    ``degraded`` marks answers the resilience layer salvaged from a
    partial failure (keyword-match parse fallback, deadline cutoff,
    absorbed crash); ``confidence`` drops below 1.0 on those rungs and
    ``fault_events`` carries the full provenance of what went wrong.
    """

    question_type: QuestionType
    value: str
    support: list[RelationPair] = field(default_factory=list)
    latency: float | None = None
    degraded: bool = False
    confidence: float = 1.0
    fault_events: list[FaultEvent] = field(default_factory=list)
    #: sources restored by :meth:`from_dict` — a deserialized answer
    #: has no live graph objects to rebuild ``support`` from, so the
    #: serialized source summary rides along verbatim instead
    restored_sources: dict[str, object] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def supporting_images(self) -> list[int]:
        """Distinct image ids among the supporting relation pairs."""
        images = {
            pair.edge.props.get("image_id")
            for pair in self.support
            if pair.edge.props.get("image_id") is not None
        }
        return sorted(images)

    def sources(self) -> dict[str, object]:
        """The JSON-ready evidence summary: distinct supporting image
        ids plus the supporting triples (with per-edge image ids)."""
        if not self.support and self.restored_sources is not None:
            return dict(self.restored_sources)
        return {
            "images": self.supporting_images,
            "support": [
                {
                    "subject": pair.subject.label,
                    "predicate": pair.edge.label,
                    "object": pair.object.label,
                    "image_id": pair.edge.props.get("image_id"),
                }
                for pair in self.support
            ],
        }

    def to_dict(self) -> dict[str, object]:
        """The one stable JSON shape of an answer.

        ``{"answer", "question_type", "sources", "meta"}`` — the
        ``meta`` block carries ``latency`` (simulated seconds),
        ``degraded``, ``confidence``, and the full ``fault_events``
        provenance.  The serving layer's ``POST /ask`` body and the
        ``repro ask --json`` / ``repro chaos --dump`` outputs are all
        exactly this dict, so round-tripping through JSON and
        :meth:`from_dict` is lossless at the contract level.
        """
        latency = None if self.latency is None \
            else round(self.latency, 9)
        return {
            "answer": self.value,
            "question_type": self.question_type.value,
            "sources": self.sources(),
            "meta": {
                "latency": latency,
                "degraded": self.degraded,
                "confidence": round(self.confidence, 9),
                "fault_events": [event.to_dict()
                                 for event in self.fault_events],
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> Answer:
        """Rebuild an answer from :meth:`to_dict`'s payload.

        The supporting relation pairs cannot be re-attached to live
        graph objects, so the serialized source summary is preserved
        on :attr:`restored_sources` — ``from_dict(a.to_dict())``
        serializes back to the identical dict.
        """
        meta = payload.get("meta") or {}
        if not isinstance(meta, dict):
            raise ValueError(f"malformed answer meta: {meta!r}")
        sources = payload.get("sources")
        latency = meta.get("latency")
        if latency is not None and not isinstance(latency, (int, float)):
            raise ValueError(f"malformed latency: {latency!r}")
        confidence = meta.get("confidence", 1.0)
        if not isinstance(confidence, (int, float)):
            raise ValueError(f"malformed confidence: {confidence!r}")
        events = meta.get("fault_events", [])
        if not isinstance(events, list):
            raise ValueError(f"malformed fault_events: {events!r}")
        return cls(
            question_type=QuestionType(payload["question_type"]),
            value=str(payload["answer"]),
            latency=None if latency is None else float(latency),
            degraded=bool(meta.get("degraded", False)),
            confidence=float(confidence),
            fault_events=[FaultEvent.from_dict(event)
                          for event in events],
            restored_sources=dict(sources)
            if isinstance(sources, dict) else None,
        )

    def __str__(self) -> str:
        """The bare answer string."""
        return self.value


def render_answer(answer: Answer, question: str | None = None) -> str:
    """The shared human-readable rendering of one answer.

    Every CLI that prints a single answer (``repro ask``,
    ``repro trace``, ``repro chaos --dump`` summaries) goes through
    this, so the text view and the :meth:`Answer.to_dict` wire view
    cannot drift apart field-by-field.
    """
    lines = []
    if question is not None:
        lines.append(f"Q: {question}")
    lines.append(f"A: {answer.value}")
    sources = answer.sources()
    images = sources.get("images") or []
    if images:
        lines.append(f"   evidence images: {list(images)}")
    if answer.degraded:
        lines.append(f"   degraded (confidence "
                     f"{answer.confidence:.2f})")
    for event in answer.fault_events:
        lines.append(f"   {event.render()}")
    return "\n".join(lines)


def fallback_answer(
    question_type: QuestionType,
    events: list[FaultEvent],
    confidence: float = 0.0,
) -> Answer:
    """An attributed ``"unknown"``: the degradation ladder's last rung.

    Used when a query could not be executed at all (parse rejection,
    executor crash, deadline cutoff before the main clause) — the slot
    stays filled and aligned, and the events say why.
    """
    return Answer(
        question_type,
        "unknown",
        [],
        degraded=True,
        confidence=confidence,
        fault_events=list(events),
    )


def final_answer(
    spoc: SPOC,
    pairs: list[RelationPair],
    kind_filter: Callable[[str, str], bool] | None = None,
    kind_min_images: int = 3,
) -> Answer:
    """Aggregate the main clause's answer pairs into an Answer.

    ``kind_filter(label, ancestor)`` decides, for "kind of X" answer
    terms, whether a candidate label is a kind of X (injected by the
    executor so the check can consult the merged graph's ``is a``
    hierarchy).
    """
    qtype = spoc.question_type or QuestionType.REASONING
    term = spoc.slot(spoc.answer_role)

    if qtype is QuestionType.JUDGMENT:
        value = "yes" if pairs else "no"
        return Answer(qtype, value, pairs)

    answer_vertices = [
        pair.subject if spoc.answer_role == "subject" else pair.object
        for pair in pairs
    ]

    if qtype is QuestionType.COUNTING:
        if term is not None and term.kind_of:
            # kind counting ignores labels with single-image support —
            # one hallucinated edge must not add a "kind"
            images_per_label: dict[str, set] = {}
            for pair, vertex in zip(pairs, answer_vertices, strict=True):
                evidence = pair.edge.props.get("image_id", pair.edge.id)
                images_per_label.setdefault(vertex.label,
                                            set()).add(evidence)
            count = sum(1 for images in images_per_label.values()
                        if len(images) >= kind_min_images)
        else:
            count = len({v.id for v in answer_vertices})
        return Answer(qtype, str(count), pairs)

    # reasoning: most-supported candidate label
    labels = [v.label for v in answer_vertices
              if v.props.get("kind") != "concept" or v.label]
    if term is not None and term.kind_of and kind_filter is not None:
        labels = [
            label for label in labels
            if label.lower() != term.head.lower()
            and kind_filter(label, term.head)
        ]
    if not labels:
        return Answer(qtype, "unknown", [])
    winner = Counter(labels).most_common(1)[0][0]
    support = [
        pair for pair, vertex in zip(pairs, answer_vertices, strict=True)
        if vertex.label == winner
    ]
    return Answer(qtype, winner, support)
