"""Execution observability: the executor's counters, registry-backed.

:class:`ExecutorStats` is shared by every executor in a batch run (all
worker threads record into one object).  Since the observability layer
landed it is a thin facade over a
:class:`~repro.observability.metrics.MetricsRegistry`: every
``record_*`` call increments a named counter/histogram/gauge, so the
same numbers are available three ways —

* :meth:`ExecutorStats.snapshot` freezes them into the legacy
  :class:`ExecutorStatsReport` (what ``repro bench`` prints);
* :attr:`ExecutorStats.registry` exposes the registry itself for the
  Prometheus text exposition and the JSON snapshot that
  ``repro profile`` byte-diffs in CI;
* per-question *why*-level detail rides on the span tracer
  (:mod:`repro.observability.spans`), not here.

The counters complement the cache's own hit/miss totals with detail
such as how many query-graph vertices each query executed, how often
predicate filtering rejected retrieved pairs, and how often a
constraint ("most frequently") actually narrowed a result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.locks import note_read, note_write, wrap_lock
from repro.observability.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
)

#: histogram buckets for normalized fallback confidences in [0, 1]
CONFIDENCE_BUCKETS: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9)

#: numeric encoding of breaker states for the ``svqa_breaker_state``
#: gauge (closed flows, half-open probes, open short-circuits)
BREAKER_STATE_VALUES: dict[str, float] = {
    "closed": 0.0,
    "half-open": 1.0,
    "open": 2.0,
}


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@dataclass(frozen=True)
class ExecutorStatsReport:
    """An immutable snapshot of :class:`ExecutorStats`."""

    #: queries that ran to an answer (Algorithm 3 completions)
    queries: int
    #: query-graph vertices executed, summed over all queries
    vertices: int
    #: vertices executed by each query, in completion order
    per_query_vertices: tuple[int, ...]
    #: scope-store (matchVertex) cache hits
    scope_hits: int
    #: scope-store cache misses
    scope_misses: int
    #: path-store (getRelationpairs) cache hits
    path_hits: int
    #: path-store cache misses
    path_misses: int
    #: pairs dropped by maxScore predicate filtering
    predicate_rejections: int
    #: vertices where *every* retrieved pair was filtered out
    predicate_dropouts: int
    #: constraints ("most frequently") that narrowed a result
    constraint_applications: int
    #: query graphs run through the semantic validator
    graphs_validated: int = 0
    #: ERROR diagnostics across all validated graphs
    validation_errors: int = 0
    #: WARNING diagnostics across all validated graphs
    validation_warnings: int = 0
    #: injected faults that fired
    faults_injected: int = 0
    #: per-site fault counts, sorted by site name
    fault_sites: tuple[tuple[str, int], ...] = ()
    #: backoffs charged before a re-attempt
    retry_attempts: int = 0
    #: operations that succeeded after at least one fault
    retry_recoveries: int = 0
    #: guard calls whose retry budget ran out
    retries_exhausted: int = 0
    #: circuit transitions to open
    breaker_trips: int = 0
    #: calls rejected by an open circuit
    breaker_short_circuits: int = 0
    #: queries cut off by their deadline budget
    deadline_cutoffs: int = 0
    #: answers salvaged by the degradation ladder
    degraded_answers: int = 0
    #: scope/path cache entries retired by graph-epoch invalidation
    stale_scope_drops: int = 0
    #: warm starts that degraded to a full vision-pipeline rebuild
    store_rebuilds: int = 0
    #: batches routed through the cost-based multi-query planner
    plan_batches: int = 0
    #: canonical plan nodes discovered across planned batches
    plan_nodes: int = 0
    #: shared sub-plan nodes executed once and fanned out
    plan_shared_nodes: int = 0
    #: cache-miss closures served from the plan overlay
    plan_overlay_fills: int = 0
    #: ANN-tier scores computed for the first time (charged
    #: ``embed_score``)
    retrieval_ann_fresh: int = 0
    #: ANN-tier scores served from the memo (charged ``ann_probe``)
    retrieval_ann_probes: int = 0
    #: degraded parses that went through the ranked retrieval fallback
    retrieval_fallbacks: int = 0

    @property
    def scope_hit_rate(self) -> float:
        """Scope-store hits over all scope-store requests."""
        return _rate(self.scope_hits, self.scope_misses)

    @property
    def path_hit_rate(self) -> float:
        """Path-store hits over all path-store requests."""
        return _rate(self.path_hits, self.path_misses)

    @property
    def mean_vertices_per_query(self) -> float:
        """Average executed query-graph vertices per query."""
        return self.vertices / self.queries if self.queries else 0.0


class ExecutorStats:
    """Mutable, thread-safe execution counters over a metrics registry.

    Every ``record_*`` method is safe to call from any worker thread;
    the executor calls them at the corresponding Algorithm-3 stages.
    Pass a shared :class:`~repro.observability.metrics.MetricsRegistry`
    to co-locate these series with other subsystems' metrics, or let
    the constructor create a private one.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = wrap_lock(threading.Lock(), "stats")
        self._per_query_vertices: list[int] = []
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        r = self.registry
        self._queries = r.counter(
            "svqa_queries_total",
            "Queries executed to completion by Algorithm 3.")
        self._query_vertices = r.histogram(
            "svqa_query_vertices",
            "Query-graph vertices executed per query.",
            buckets=COUNT_BUCKETS)
        self._query_latency = r.histogram(
            "svqa_query_latency_seconds",
            "Per-query simulated latency.",
            buckets=LATENCY_BUCKETS)
        self._cache_requests = r.counter(
            "svqa_cache_requests_total",
            "Key-centric cache lookups by store and outcome.",
            labels=("store", "outcome"))
        self._predicate_rejections = r.counter(
            "svqa_predicate_rejections_total",
            "Relation pairs dropped by maxScore predicate filtering.")
        self._predicate_dropouts = r.counter(
            "svqa_predicate_dropouts_total",
            "Vertices where predicate filtering dropped every pair.")
        self._constraints = r.counter(
            "svqa_constraint_applications_total",
            "Constraints that actually narrowed a result set.")
        self._validated = r.counter(
            "svqa_validated_graphs_total",
            "Query graphs run through the semantic validator.")
        self._diagnostics = r.counter(
            "svqa_validation_diagnostics_total",
            "Validator diagnostics by severity.",
            labels=("severity",))
        self._faults = r.counter(
            "svqa_faults_injected_total",
            "Injected faults that fired, by site.",
            labels=("site",))
        self._retries = r.counter(
            "svqa_retry_attempts_total",
            "Backoffs charged before a retry attempt.")
        self._recoveries = r.counter(
            "svqa_retry_recoveries_total",
            "Guarded operations that succeeded after faults.")
        self._exhausted = r.counter(
            "svqa_retries_exhausted_total",
            "Guard calls whose retry budget ran out.")
        self._breaker_trips = r.counter(
            "svqa_breaker_trips_total",
            "Circuit-breaker transitions to open.")
        self._short_circuits = r.counter(
            "svqa_breaker_short_circuits_total",
            "Calls rejected by an open circuit.")
        self._deadline_cutoffs = r.counter(
            "svqa_deadline_cutoffs_total",
            "Queries cut off by their deadline budget.")
        self._degraded = r.counter(
            "svqa_degraded_answers_total",
            "Answers salvaged by the degradation ladder.")
        self._stale_drops = r.counter(
            "svqa_stale_scope_drops_total",
            "Scope/path cache entries retired by graph-epoch "
            "invalidation.")
        self._store_rebuilds = r.counter(
            "svqa_store_rebuilds_total",
            "Warm starts that degraded to a full vision-pipeline "
            "rebuild (durable store unrecoverable).")
        self._hit_ratio = r.gauge(
            "svqa_cache_hit_ratio",
            "Cache hit ratio by store (refreshed at snapshot time).",
            labels=("store",))
        self._breaker_state = r.gauge(
            "svqa_breaker_state",
            "Circuit-breaker state by site "
            "(0=closed, 1=half-open, 2=open).",
            labels=("site",))
        # planner families are registered lazily on first planner use:
        # a registered family is exported even with zero series, and
        # the planner-off path must keep /metrics snapshots
        # byte-identical to the pre-planner system
        self._plan_batches: Counter | None = None
        self._plan_nodes: Counter | None = None
        self._plan_shared: Counter | None = None
        self._plan_fills: Counter | None = None
        # retrieval families follow the same lazy discipline: the
        # retrieval-off path must keep /metrics byte-identical to the
        # pre-retrieval system
        self._retrieval_lookups: Counter | None = None
        self._retrieval_fallbacks: Counter | None = None
        self._retrieval_confidence: Histogram | None = None

    def _ensure_plan_metrics(self) -> None:
        """Register the ``svqa_plan_*`` families (idempotent).

        Called from the planner's record methods; the first call runs
        on the main thread during the share phase, before any worker
        forks, and the registry's get-or-create is lock-guarded, so
        later defensive calls are safe from any thread.
        """
        if self._plan_batches is not None:
            return
        r = self.registry
        self._plan_batches = r.counter(
            "svqa_plan_batches_total",
            "Batches routed through the multi-query planner.")
        self._plan_nodes = r.counter(
            "svqa_plan_nodes_total",
            "Canonical plan nodes discovered, by kind.",
            labels=("kind",))
        self._plan_shared = r.counter(
            "svqa_plan_shared_nodes_total",
            "Shared sub-plan nodes executed once and fanned out, "
            "by kind.",
            labels=("kind",))
        self._plan_fills = r.counter(
            "svqa_plan_overlay_fills_total",
            "Cache-miss closures served from the plan overlay, "
            "by store.",
            labels=("store",))

    def _ensure_retrieval_metrics(self) -> None:
        """Register the ``svqa_retrieval_*`` families (idempotent).

        Same threading contract as :meth:`_ensure_plan_metrics`: the
        registry's get-or-create is lock-guarded, and duplicate
        assignments of the same family object are benign.
        """
        if self._retrieval_lookups is not None:
            return
        r = self.registry
        self._retrieval_lookups = r.counter(
            "svqa_retrieval_ann_lookups_total",
            "ANN-tier scores by executor site and outcome "
            "(fresh=computed, probe=memo hit).",
            labels=("site", "outcome"))
        self._retrieval_fallbacks = r.counter(
            "svqa_retrieval_fallbacks_total",
            "Degraded parses offered to the ranked retrieval "
            "fallback, by outcome.",
            labels=("outcome",))
        self._retrieval_confidence = r.histogram(
            "svqa_retrieval_fallback_confidence",
            "Normalized BM25 confidence of ranked fallback answers.",
            buckets=CONFIDENCE_BUCKETS)

    def record_retrieval(self, site: str, fresh: int,
                         probes: int) -> None:
        """One ANN-tier lookup at ``site`` computed ``fresh`` scores
        and served ``probes`` from the memo."""
        self._ensure_retrieval_metrics()
        assert self._retrieval_lookups is not None
        if fresh:
            self._retrieval_lookups.inc(fresh, site=site,
                                        outcome="fresh")
        if probes:
            self._retrieval_lookups.inc(probes, site=site,
                                        outcome="probe")

    def record_retrieval_fallback(
        self, outcome: str, confidence: float | None = None
    ) -> None:
        """One degraded parse reached the ranked retrieval fallback
        (``outcome`` is ``ranked`` or ``empty``); ranked fallbacks
        also observe their normalized confidence."""
        self._ensure_retrieval_metrics()
        assert self._retrieval_fallbacks is not None
        assert self._retrieval_confidence is not None
        self._retrieval_fallbacks.inc(outcome=outcome)
        if confidence is not None:
            self._retrieval_confidence.observe(confidence)

    def record_query(self, vertex_count: int) -> None:
        """One query ran to completion, executing ``vertex_count``
        query-graph vertices."""
        with self._lock:
            note_write("stats.per_query_vertices")
            self._per_query_vertices.append(vertex_count)
        self._queries.inc()
        self._query_vertices.observe(vertex_count)

    def record_latency(self, seconds: float) -> None:
        """One query's end-to-end simulated latency."""
        self._query_latency.observe(seconds)

    def record_scope(self, hit: bool) -> None:
        """One scope-store (matchVertex) lookup."""
        self._cache_requests.inc(store="scope",
                                outcome="hit" if hit else "miss")

    def record_path(self, hit: bool) -> None:
        """One path-store (getRelationpairs) lookup."""
        self._cache_requests.inc(store="path",
                                outcome="hit" if hit else "miss")

    def record_filter(self, before: int, after: int) -> None:
        """Predicate filtering reduced ``before`` pairs to ``after``."""
        rejected = before - after
        if rejected <= 0:
            return
        self._predicate_rejections.inc(rejected)
        if after == 0:
            self._predicate_dropouts.inc()

    def record_constraint(self) -> None:
        """One constraint application narrowed a result set."""
        self._constraints.inc()

    def record_validation(self, errors: int, warnings: int) -> None:
        """One query graph went through the semantic validator."""
        self._validated.inc()
        if errors:
            self._diagnostics.inc(errors, severity="error")
        if warnings:
            self._diagnostics.inc(warnings, severity="warning")

    def record_fault(self, site: str) -> None:
        """One injected fault fired at ``site``."""
        self._faults.inc(site=site)

    def record_retry(self) -> None:
        """One backoff was charged before a retry attempt."""
        self._retries.inc()

    def record_recovery(self) -> None:
        """A guarded operation succeeded after at least one fault."""
        self._recoveries.inc()

    def record_retry_exhausted(self) -> None:
        """A guard call ran out of retry budget."""
        self._exhausted.inc()

    def record_breaker_trip(self) -> None:
        """A circuit breaker transitioned to open."""
        self._breaker_trips.inc()

    def record_breaker_short_circuit(self) -> None:
        """An open circuit rejected a call."""
        self._short_circuits.inc()

    def record_breaker_state(self, site: str, state: str) -> None:
        """Publish ``site``'s current breaker state to the gauge."""
        self._breaker_state.set(
            BREAKER_STATE_VALUES.get(state, -1.0), site=site
        )

    def record_deadline_cutoff(self) -> None:
        """A query was cut off by its deadline budget."""
        self._deadline_cutoffs.inc()

    def record_degraded(self) -> None:
        """One answer was salvaged by the degradation ladder."""
        self._degraded.inc()

    def record_stale_scope_drops(self, count: int) -> None:
        """``count`` stale cache entries were retired after the merged
        graph moved to a new epoch."""
        if count > 0:
            self._stale_drops.inc(count)

    def record_plan_batch(self, nodes: dict[str, int]) -> None:
        """One batch went through the planner, discovering ``nodes``
        canonical plan nodes (keyed by node kind); the shared subset
        is recorded per execution by :meth:`record_plan_shared`."""
        self._ensure_plan_metrics()
        assert self._plan_batches is not None
        assert self._plan_nodes is not None
        self._plan_batches.inc()
        for kind, count in sorted(nodes.items()):
            if count > 0:
                self._plan_nodes.inc(count, kind=kind)

    def record_plan_shared(self, kind: str) -> None:
        """The share phase executed one shared sub-plan node."""
        self._ensure_plan_metrics()
        assert self._plan_shared is not None
        self._plan_shared.inc(kind=kind)

    def record_plan_fill(self, store: str) -> None:
        """One cache-miss closure was served from the plan overlay
        instead of recomputing (``store`` is ``scope`` or ``path``)."""
        self._ensure_plan_metrics()
        assert self._plan_fills is not None
        self._plan_fills.inc(store=store)

    def record_store_rebuild(self) -> None:
        """A warm start found the durable store unrecoverable and
        degraded to a full rebuild."""
        self._store_rebuilds.inc()

    def reset(self) -> None:
        """Zero every counter, histogram, and gauge."""
        with self._lock:
            note_write("stats.per_query_vertices")
            self._per_query_vertices.clear()
        self.registry.reset()

    def snapshot(self) -> ExecutorStatsReport:
        """Freeze the counters into an :class:`ExecutorStatsReport`.

        Also refreshes the derived ``svqa_cache_hit_ratio`` gauges so
        a registry export taken right after a snapshot is consistent
        with the report.
        """
        with self._lock:
            note_read("stats.per_query_vertices")
            counts = tuple(self._per_query_vertices)
        cache = self._cache_requests
        scope_hits = int(cache.value(store="scope", outcome="hit"))
        scope_misses = int(cache.value(store="scope", outcome="miss"))
        path_hits = int(cache.value(store="path", outcome="hit"))
        path_misses = int(cache.value(store="path", outcome="miss"))
        self._hit_ratio.set(_rate(scope_hits, scope_misses),
                            store="scope")
        self._hit_ratio.set(_rate(path_hits, path_misses), store="path")
        fault_sites = tuple(
            (key[0], int(value))
            for key, value in self._faults.series_items()
        )
        return ExecutorStatsReport(
            queries=int(self._queries.total()),
            vertices=sum(counts),
            per_query_vertices=counts,
            scope_hits=scope_hits,
            scope_misses=scope_misses,
            path_hits=path_hits,
            path_misses=path_misses,
            predicate_rejections=int(self._predicate_rejections.total()),
            predicate_dropouts=int(self._predicate_dropouts.total()),
            constraint_applications=int(self._constraints.total()),
            graphs_validated=int(self._validated.total()),
            validation_errors=int(
                self._diagnostics.value(severity="error")),
            validation_warnings=int(
                self._diagnostics.value(severity="warning")),
            faults_injected=int(self._faults.total()),
            fault_sites=fault_sites,
            retry_attempts=int(self._retries.total()),
            retry_recoveries=int(self._recoveries.total()),
            retries_exhausted=int(self._exhausted.total()),
            breaker_trips=int(self._breaker_trips.total()),
            breaker_short_circuits=int(self._short_circuits.total()),
            deadline_cutoffs=int(self._deadline_cutoffs.total()),
            degraded_answers=int(self._degraded.total()),
            stale_scope_drops=int(self._stale_drops.total()),
            store_rebuilds=int(self._store_rebuilds.total()),
            plan_batches=int(self._plan_batches.total())
            if self._plan_batches is not None else 0,
            plan_nodes=int(self._plan_nodes.total())
            if self._plan_nodes is not None else 0,
            plan_shared_nodes=int(self._plan_shared.total())
            if self._plan_shared is not None else 0,
            plan_overlay_fills=int(self._plan_fills.total())
            if self._plan_fills is not None else 0,
            retrieval_ann_fresh=int(
                sum(value
                    for key, value
                    in self._retrieval_lookups.series_items()
                    if key[1] == "fresh"))
            if self._retrieval_lookups is not None else 0,
            retrieval_ann_probes=int(
                sum(value
                    for key, value
                    in self._retrieval_lookups.series_items()
                    if key[1] == "probe"))
            if self._retrieval_lookups is not None else 0,
            retrieval_fallbacks=int(self._retrieval_fallbacks.total())
            if self._retrieval_fallbacks is not None else 0,
        )
