"""Execution observability: thread-safe counters for the executor.

:class:`ExecutorStats` is shared by every executor in a batch run (all
worker threads record into one object); :meth:`ExecutorStats.snapshot`
freezes the counters into an immutable :class:`ExecutorStatsReport`
for display.  The counters complement the cache's own hit/miss totals
with *why*-level detail: how many query-graph vertices each query
executed, how often predicate filtering rejected retrieved pairs, and
how often a constraint ("most frequently") actually narrowed a result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@dataclass(frozen=True)
class ExecutorStatsReport:
    """An immutable snapshot of :class:`ExecutorStats`."""

    queries: int
    vertices: int
    per_query_vertices: tuple[int, ...]
    scope_hits: int
    scope_misses: int
    path_hits: int
    path_misses: int
    predicate_rejections: int      # pairs dropped by maxScore filtering
    predicate_dropouts: int        # vertices where *every* pair dropped
    constraint_applications: int   # constraints that narrowed a result
    graphs_validated: int = 0      # query graphs run through the validator
    validation_errors: int = 0     # ERROR diagnostics across all graphs
    validation_warnings: int = 0   # WARNING diagnostics across all graphs
    faults_injected: int = 0       # injected faults that fired
    fault_sites: tuple[tuple[str, int], ...] = ()  # per-site fault counts
    retry_attempts: int = 0        # backoffs charged before a re-attempt
    retry_recoveries: int = 0      # operations that succeeded after faults
    retries_exhausted: int = 0     # guard calls whose retry budget ran out
    breaker_trips: int = 0         # circuit transitions to open
    breaker_short_circuits: int = 0  # calls rejected by an open circuit
    deadline_cutoffs: int = 0      # queries cut off by their budget
    degraded_answers: int = 0      # answers salvaged by the ladder

    @property
    def scope_hit_rate(self) -> float:
        return _rate(self.scope_hits, self.scope_misses)

    @property
    def path_hit_rate(self) -> float:
        return _rate(self.path_hits, self.path_misses)

    @property
    def mean_vertices_per_query(self) -> float:
        return self.vertices / self.queries if self.queries else 0.0


class ExecutorStats:
    """Mutable, lock-guarded execution counters.

    Every ``record_*`` method is safe to call from any worker thread;
    the executor calls them at the corresponding Algorithm-3 stages.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries = 0
        self._per_query_vertices: list[int] = []
        self._scope_hits = 0
        self._scope_misses = 0
        self._path_hits = 0
        self._path_misses = 0
        self._predicate_rejections = 0
        self._predicate_dropouts = 0
        self._constraint_applications = 0
        self._graphs_validated = 0
        self._validation_errors = 0
        self._validation_warnings = 0
        self._faults_injected = 0
        self._fault_sites: dict[str, int] = {}
        self._retry_attempts = 0
        self._retry_recoveries = 0
        self._retries_exhausted = 0
        self._breaker_trips = 0
        self._breaker_short_circuits = 0
        self._deadline_cutoffs = 0
        self._degraded_answers = 0

    def record_query(self, vertex_count: int) -> None:
        with self._lock:
            self._queries += 1
            self._per_query_vertices.append(vertex_count)

    def record_scope(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._scope_hits += 1
            else:
                self._scope_misses += 1

    def record_path(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._path_hits += 1
            else:
                self._path_misses += 1

    def record_filter(self, before: int, after: int) -> None:
        rejected = before - after
        if rejected <= 0:
            return
        with self._lock:
            self._predicate_rejections += rejected
            if after == 0:
                self._predicate_dropouts += 1

    def record_constraint(self) -> None:
        with self._lock:
            self._constraint_applications += 1

    def record_validation(self, errors: int, warnings: int) -> None:
        """One query graph went through the semantic validator."""
        with self._lock:
            self._graphs_validated += 1
            self._validation_errors += errors
            self._validation_warnings += warnings

    def record_fault(self, site: str) -> None:
        """One injected fault fired at ``site``."""
        with self._lock:
            self._faults_injected += 1
            self._fault_sites[site] = self._fault_sites.get(site, 0) + 1

    def record_retry(self) -> None:
        with self._lock:
            self._retry_attempts += 1

    def record_recovery(self) -> None:
        """A guarded operation succeeded after at least one fault."""
        with self._lock:
            self._retry_recoveries += 1

    def record_retry_exhausted(self) -> None:
        with self._lock:
            self._retries_exhausted += 1

    def record_breaker_trip(self) -> None:
        with self._lock:
            self._breaker_trips += 1

    def record_breaker_short_circuit(self) -> None:
        with self._lock:
            self._breaker_short_circuits += 1

    def record_deadline_cutoff(self) -> None:
        with self._lock:
            self._deadline_cutoffs += 1

    def record_degraded(self) -> None:
        """One answer was salvaged by the degradation ladder."""
        with self._lock:
            self._degraded_answers += 1

    def reset(self) -> None:
        with self._lock:
            self._queries = 0
            self._per_query_vertices.clear()
            self._scope_hits = self._scope_misses = 0
            self._path_hits = self._path_misses = 0
            self._predicate_rejections = 0
            self._predicate_dropouts = 0
            self._constraint_applications = 0
            self._graphs_validated = 0
            self._validation_errors = 0
            self._validation_warnings = 0
            self._faults_injected = 0
            self._fault_sites.clear()
            self._retry_attempts = 0
            self._retry_recoveries = 0
            self._retries_exhausted = 0
            self._breaker_trips = 0
            self._breaker_short_circuits = 0
            self._deadline_cutoffs = 0
            self._degraded_answers = 0

    def snapshot(self) -> ExecutorStatsReport:
        with self._lock:
            counts = tuple(self._per_query_vertices)
            return ExecutorStatsReport(
                queries=self._queries,
                vertices=sum(counts),
                per_query_vertices=counts,
                scope_hits=self._scope_hits,
                scope_misses=self._scope_misses,
                path_hits=self._path_hits,
                path_misses=self._path_misses,
                predicate_rejections=self._predicate_rejections,
                predicate_dropouts=self._predicate_dropouts,
                constraint_applications=self._constraint_applications,
                graphs_validated=self._graphs_validated,
                validation_errors=self._validation_errors,
                validation_warnings=self._validation_warnings,
                faults_injected=self._faults_injected,
                fault_sites=tuple(sorted(self._fault_sites.items())),
                retry_attempts=self._retry_attempts,
                retry_recoveries=self._retry_recoveries,
                retries_exhausted=self._retries_exhausted,
                breaker_trips=self._breaker_trips,
                breaker_short_circuits=self._breaker_short_circuits,
                deadline_cutoffs=self._deadline_cutoffs,
                degraded_answers=self._degraded_answers,
            )
