"""QueryGraphExecutor: Algorithm 3 — running ``G_q`` over ``G_mg``.

The executor walks the query graph from its in-degree-0 condition
vertices toward the main clause.  For every vertex it

1. **matches** the subject/object terms to merged-graph vertices
   (``matchVertex``: normalized-Levenshtein label matching, possessive
   resolution through KG edges, and ``is a`` / ``instance of``
   expansion so "pets" finds dog/cat/bird instances) — served by the
   graph's :class:`~repro.graph.candidates.VertexCandidateIndex`, so
   only a small candidate set is examined instead of every distinct
   label, and ``vertex_match`` is charged per candidate *examined*;
2. **retrieves** the relation pairs between the two vertex sets
   (``getRelationpairs``);
3. **filters** pairs by the predicate's most similar edge label
   (``maxScore`` over embeddings) and applies the constraint
   ("most frequently" keeps the subject group supported by the most
   images);
4. **propagates** the surviving labels along S2S/S2O/O2S/O2O edges to
   its consumers (Update stage).

The key-centric cache short-circuits steps 1 (scope) and 2 (path).
Scope and path cache keys carry the merged graph's **epoch** (its
monotone mutation counter) so a mutation after merge retires every
stale entry instead of serving deleted or mis-labeled vertices; every
uncached operation charges the simulated clock with its true
data-dependent cost, which is what the latency experiments measure.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.diagnostics import DiagnosticReport
    from repro.analysis.query_validator import QueryGraphValidator
    from repro.core.planner import PlanOverlay
    from repro.graph.model import Edge
    from repro.nlp.ann import EmbeddingANNIndex
    from repro.resilience.manager import ResilienceManager
    from repro.retrieval.config import RetrievalConfig

from repro.errors import ExecutionError, QueryValidationError
from repro.graph import Graph, RelationPair, Vertex, relations_between
from repro.nlp.dword import within_distance
from repro.nlp.embeddings import max_score, rank_scores
from repro.nlp.morphology import noun_singular
from repro.nlp.semlex import are_synonyms
from repro.observability.spans import Tracer, maybe_span
from repro.resilience.events import FaultEvent
from repro.resilience.retry import DeadlineBudget
from repro.simtime import SimClock
from repro.core.aggregator import MergedGraph
from repro.core.answer import Answer, fallback_answer, final_answer
from repro.core.cache import KeyCentricCache
from repro.core.spoc import QueryGraph, QuestionType, SPOC, Term
from repro.core.spoc_extract import CONSTRAINT_WORDS
from repro.core.stats import ExecutorStats
from repro.dataset.kg import INSTANCE_OF, IS_A

#: FaultEvent kinds that mean an answer was actually degraded (faults
#: that were retried away leave provenance but full answer quality)
_DEGRADING_EVENT_KINDS = frozenset({
    "exhausted", "degraded", "short-circuit", "deadline",
})

#: edge labels that carry structure, not scene/KG relations
_STRUCTURAL_LABELS = frozenset({INSTANCE_OF, IS_A})


#: legal values of :attr:`ExecutorConfig.validation`
VALIDATION_MODES: frozenset[str] = frozenset({"off", "warn", "strict"})


@dataclass
class ExecutorConfig:
    """Matching thresholds of Algorithm 3 plus validation policy.

    ``validation`` controls the pre-execution semantic validator
    (:mod:`repro.analysis.query_validator`): ``"warn"`` (default)
    records diagnostic counts in :class:`ExecutorStats` and proceeds,
    ``"strict"`` fails fast with
    :class:`~repro.errors.QueryValidationError` when a graph carries
    ERROR diagnostics, ``"off"`` skips validation entirely.
    """

    ld_threshold: float = 0.34        # normalized-Levenshtein cutoff
    predicate_threshold: float = 0.55  # cosine floor for edge labels
    constraint_threshold: float = 0.5  # cosine floor for constraints
    expansion_hops: int = 2           # "is a" hops in matchVertex
    validation: str = "warn"          # off | warn | strict


@dataclass
class VertexResult:
    """What executing one query-graph vertex produced."""

    spoc: SPOC
    subjects: list[Vertex]
    objects: list[Vertex]
    pairs: list[RelationPair]
    matched_predicate: str | None

    def subjects_of_pairs(self) -> list[Vertex]:
        """Distinct subjects among the surviving pairs (``AP.Sub``)."""
        seen: dict[int, Vertex] = {}
        for pair in self.pairs:
            seen.setdefault(pair.subject.id, pair.subject)
        return list(seen.values())

    def objects_of_pairs(self) -> list[Vertex]:
        """Distinct objects among the surviving pairs (``AP.Obj``)."""
        seen: dict[int, Vertex] = {}
        for pair in self.pairs:
            seen.setdefault(pair.object.id, pair.object)
        return list(seen.values())


class QueryGraphExecutor:
    """Executes query graphs over a merged graph."""

    def __init__(
        self,
        merged: MergedGraph,
        cache: KeyCentricCache | None = None,
        clock: SimClock | None = None,
        config: ExecutorConfig | None = None,
        stats: ExecutorStats | None = None,
        resilience: ResilienceManager | None = None,
        tracer: Tracer | None = None,
        plan_overlay: PlanOverlay | None = None,
        retrieval: RetrievalConfig | None = None,
    ) -> None:
        self.merged = merged
        self.graph: Graph = merged.graph
        # ANN retrieval tier: with a RetrievalConfig attached, the
        # three embedding lookups route through the graph's score
        # memo (answers stay byte-identical — only clock charges
        # change); None runs the exact pre-retrieval code path
        self._ann: EmbeddingANNIndex | None = \
            self.graph.ann_index if retrieval is not None else None
        self.cache = cache if cache is not None else KeyCentricCache.disabled()
        self.clock = clock
        # frozen fan-out store of shared sub-plan results for the
        # current planned batch (None when the planner is off — the
        # executor then runs the exact pre-planner code path)
        self.plan_overlay = plan_overlay
        self.config = config or ExecutorConfig()
        if self.config.validation not in VALIDATION_MODES:
            raise ValueError(
                f"unknown validation mode: {self.config.validation!r} "
                f"(expected one of {sorted(VALIDATION_MODES)})"
            )
        self.stats = stats
        self.resilience = resilience
        self.tracer = tracer
        # per-execute fault provenance (executors are single-threaded:
        # the batch engine gives every worker its own instance)
        self._events: list[FaultEvent] | None = None
        # built lazily on first validated query (import cycle: the
        # analysis package depends on the core SPOC model)
        self._validator: QueryGraphValidator | None = None
        self._relation_labels = [
            label for label in merged.edge_labels
            if label not in _STRUCTURAL_LABELS
        ]
        # candidate work done by the current slot resolution (feeds the
        # executor.match span's candidates/pruned attributes); cached
        # scope values replay the numbers of the original miss, so the
        # attributes stay worker-count invariant
        self._slot_candidates = 0
        self._slot_pruned = 0
        # last graph epoch this executor saw; when the graph moves on,
        # scope/path entries tagged with older epochs are retired
        self._seen_epoch = self.graph.epoch

    # ------------------------------------------------------------------
    # Algorithm 3 main loop
    # ------------------------------------------------------------------
    def validate(self, query_graph: QueryGraph) -> DiagnosticReport:
        """Run the semantic validator over one graph (layer-1 static
        analysis), recording diagnostic counts in the stats collector.

        Returns the
        :class:`~repro.analysis.diagnostics.DiagnosticReport`; raises
        :class:`~repro.errors.QueryValidationError` in ``"strict"``
        mode when the graph carries ERROR diagnostics.
        """
        if self._validator is None:
            # imported lazily: repro.analysis depends on repro.core's
            # SPOC model, so a module-level import would be circular
            from repro.analysis.query_validator import QueryGraphValidator

            self._validator = QueryGraphValidator()
        report = self._validator.validate(query_graph)
        if self.stats is not None:
            self.stats.record_validation(
                len(report.errors), len(report.warnings)
            )
        if self.config.validation == "strict" and report.has_errors:
            summary = "; ".join(d.render() for d in report.errors)
            raise QueryValidationError(
                f"query graph failed semantic validation: {summary}",
                diagnostics=report,
            )
        return report

    def execute(
        self, query_graph: QueryGraph,
        deadline_limit: float | None = None,
    ) -> Answer:
        """Run one query graph and produce the final answer.

        When :attr:`ExecutorConfig.validation` is not ``"off"``, the
        graph first passes through the semantic validator — broken
        wiring is reported (or, in strict mode, rejected) before
        Algorithm 3 touches the merged graph.

        With a resilience manager attached, matchVertex / cache
        operations run under retry + circuit-breaker guards, a
        per-query deadline budget can cut execution off with the best
        partial answer, and every incident lands on the answer's
        ``fault_events``.

        ``deadline_limit`` is a per-query budget override in simulated
        seconds (the serving layer derives it from the ``Deadline-Ms``
        request header); the effective budget is the tighter of this
        and the configured :attr:`ResilienceConfig.query_deadline`.
        """
        with maybe_span(self.tracer, "executor.execute",
                        question=query_graph.question,
                        clauses=len(query_graph.vertices)) as span:
            answer = self._execute_inner(query_graph, deadline_limit)
            if span is not None:
                span.set("answer", answer.value)
                span.set("degraded", answer.degraded)
            return answer

    def _execute_inner(
        self, query_graph: QueryGraph,
        deadline_limit: float | None = None,
    ) -> Answer:
        if self.config.validation != "off":
            self.validate(query_graph)
        if self.resilience is None:
            deadline = None
            if deadline_limit is not None and self.clock is not None:
                deadline = DeadlineBudget.start(self.clock,
                                                deadline_limit)
            return self._run_graph(query_graph, deadline=deadline)
        events: list[FaultEvent] = []
        self._events = events
        try:
            answer = self._run_graph(
                query_graph,
                deadline=self.resilience.deadline(self.clock,
                                                  limit=deadline_limit),
            )
        finally:
            self._events = None
        if events:
            answer.fault_events.extend(events)
            if any(e.kind in _DEGRADING_EVENT_KINDS for e in events) \
                    and not answer.degraded:
                answer.degraded = True
                answer.confidence = min(answer.confidence, 0.5)
        if answer.degraded and self.stats is not None:
            self.stats.record_degraded()
        return answer

    def _run_graph(
        self, query_graph: QueryGraph, deadline: DeadlineBudget | None
    ) -> Answer:
        """Algorithm 3's traversal, optionally under a deadline budget."""
        bindings: dict[int, dict[str, list[str] | None]] = {
            i: {"subject": None, "object": None}
            for i in range(len(query_graph.vertices))
        }
        results: dict[int, VertexResult] = {}
        pending = deque(query_graph.start_vertices())
        if not pending:
            raise ExecutionError("query graph has no start vertices")
        executed: set[int] = set()
        remaining_inputs = {
            i: query_graph.in_degree(i)
            for i in range(len(query_graph.vertices))
        }

        last: VertexResult | None = None
        cut_off = False
        while pending:
            if deadline is not None and deadline.exceeded:
                # budget spent: stop walking and salvage what we have
                cut_off = True
                if self.stats is not None:
                    self.stats.record_deadline_cutoff()
                if self._events is not None:
                    self._events.append(FaultEvent(
                        "executor.deadline", "deadline",
                        attempts=len(executed),
                        detail=f"{deadline.consumed:.3f}s of "
                               f"{deadline.limit:.3f}s budget",
                    ))
                break
            index = pending.popleft()
            if index in executed:
                continue
            executed.add(index)
            spoc = query_graph.vertices[index]
            result = self._execute_vertex(spoc, bindings[index])
            results[index] = result
            last = result
            # Update stage: propagate to consumers
            for dst, kind in query_graph.out_edges(index):
                provider_vertices = (
                    result.subjects_of_pairs()
                    if kind.provider_slot == "subject"
                    else result.objects_of_pairs()
                )
                labels = sorted({v.label for v in provider_vertices})
                existing = bindings[dst][kind.consumer_slot]
                if existing is None:
                    bindings[dst][kind.consumer_slot] = labels
                else:
                    # two providers constrain the same slot: both
                    # conditions must hold, so intersect instead of
                    # letting the last-executed provider win
                    bindings[dst][kind.consumer_slot] = sorted(
                        set(existing) & set(labels)
                    )
                remaining_inputs[dst] -= 1
                if remaining_inputs[dst] <= 0:
                    pending.append(dst)

        main_index = query_graph.main_index
        if main_index not in results:
            if cut_off:
                # best partial answer: the main clause never ran, so
                # the honest salvage is an attributed "unknown"
                if self.stats is not None:
                    self.stats.record_query(len(executed))
                qtype = query_graph.vertices[main_index].question_type \
                    or QuestionType.REASONING
                from repro.resilience.degrade import \
                    PARTIAL_ANSWER_CONFIDENCE

                return fallback_answer(qtype, [],
                                       confidence=PARTIAL_ANSWER_CONFIDENCE)
            raise ExecutionError(
                "main clause never executed — query graph is disconnected"
            )
        if self.stats is not None:
            self.stats.record_query(len(executed))
        main_result = results[main_index]
        return final_answer(
            main_result.spoc, main_result.pairs, kind_filter=self._is_kind_of
        )

    # ------------------------------------------------------------------
    # Query stage
    # ------------------------------------------------------------------
    def _execute_vertex(
        self, spoc: SPOC, binding: dict[str, list[str] | None]
    ) -> VertexResult:
        subjects = self._guarded_resolve(spoc.subject, binding["subject"])
        objects = self._guarded_resolve(spoc.object, binding["object"])

        if spoc.predicate == "be":
            pairs = self._be_pairs(subjects, objects)
            matched = "be"
        else:
            pairs = self._relation_pairs(spoc, binding, subjects, objects)
            matched, pairs = self._filter_by_predicate(spoc.predicate, pairs)
        pairs = self._apply_constraint(spoc, pairs)
        return VertexResult(spoc, subjects, objects, pairs, matched)

    def _guarded_resolve(
        self, term: Term | None, bound_labels: list[str] | None
    ) -> list[Vertex]:
        """Slot resolution under the ``executor.match`` fault site.

        Retry-exhausted matching degrades to an empty vertex set (the
        query proceeds, typically toward "no"/"unknown") rather than
        killing the query.
        """
        if bound_labels is not None:
            key = "|".join(sorted(label.lower() for label in bound_labels))
        elif term is not None:
            key = term.head.lower()
        else:
            key = ""
        with maybe_span(self.tracer, "executor.match", key=key) as span:
            self._slot_candidates = 0
            self._slot_pruned = 0
            if self.resilience is None or \
                    (term is None and bound_labels is None):
                result = self._resolve_slot(term, bound_labels)
            else:
                result = self.resilience.call(
                    "executor.match",
                    key=key,
                    fn=lambda: self._resolve_slot(term, bound_labels),
                    clock=self.clock,
                    events=self._events,
                    fallback=list,
                )
            if span is not None:
                span.set("matches", len(result))
                span.set("candidates", self._slot_candidates)
                span.set("pruned", self._slot_pruned)
            return result

    def _observe_epoch(self) -> int:
        """The merged graph's current epoch; the first observation of a
        new epoch retires every scope/path entry computed under older
        ones (the epoch lives at index 1 of each cache key)."""
        epoch = self.graph.epoch
        if epoch != self._seen_epoch:
            dropped = self.cache.retire_stale(epoch)
            self._seen_epoch = epoch
            if dropped and self.stats is not None:
                self.stats.record_stale_scope_drops(dropped)
        return epoch

    def _scope_get_or_compute(
        self, key: tuple, compute: Callable[[], tuple[list[int], int, int]]
    ) -> tuple[tuple[list[int], int, int], bool]:
        """Scope-store access under the ``cache.scope`` fault site;
        a tripped breaker routes around the store (cache bypass)."""
        if self.resilience is None:
            return self.cache.scope_get_or_compute(key, compute)
        return self.resilience.call(
            "cache.scope",
            key=key,
            fn=lambda: self.cache.scope_get_or_compute(key, compute),
            clock=self.clock,
            events=self._events,
            fallback=lambda: (compute(), False),
        )

    def _path_get_or_compute(
        self, key: tuple, compute: Callable[[], list[RelationPair]]
    ) -> tuple[list[RelationPair], bool]:
        """Path-store access under the ``cache.path`` fault site."""
        if self.resilience is None:
            return self.cache.path_get_or_compute(key, compute)
        return self.resilience.call(
            "cache.path",
            key=key,
            fn=lambda: self.cache.path_get_or_compute(key, compute),
            clock=self.clock,
            events=self._events,
            fallback=lambda: (compute(), False),
        )

    def _resolve_slot(
        self, term: Term | None, bound_labels: list[str] | None
    ) -> list[Vertex]:
        if bound_labels is not None:
            vertices: dict[int, Vertex] = {}
            for label in bound_labels:
                for vertex in self.match_vertex_label(label):
                    vertices.setdefault(vertex.id, vertex)
            return list(vertices.values())
        if term is None:
            return []
        return self.match_vertex(term)

    # ------------------------------------------------------------------
    # matchVertex
    # ------------------------------------------------------------------
    def match_vertex(self, term: Term) -> list[Vertex]:
        """The paper's ``matchVertex``: term -> merged-graph vertices."""
        if term.owner is not None:
            return self._match_possessive(term)
        return self.match_vertex_label(term.head)

    def match_vertex_label(self, label: str) -> list[Vertex]:
        """Label -> vertices: candidate-index match + is-a/instance-of
        expansion.

        The candidate index returns exactly the labels the old linear
        ``_labels_match`` scan accepted, but only *examines* the small
        bucket-selected candidate set — and ``vertex_match`` is charged
        per candidate examined.  The cache key carries the graph epoch,
        so a mutated graph can never serve a stale id list (which is
        why no ``has_vertex`` filter is needed on the way out).
        """
        epoch = self._observe_epoch()
        key = ("scope", epoch, label.lower())

        def compute() -> tuple[list[int], int, int]:
            # scope-store miss: a shared sub-plan result may still be
            # in the batch's plan overlay (the share phase warms the
            # store, but the bounded pool can evict) — a fill replays
            # the stored triple at cache-hit cost instead of rescanning
            if self.plan_overlay is not None \
                    and self.plan_overlay.epoch == epoch:
                stored = self.plan_overlay.scope(key)
                if stored is not None:
                    if self.clock is not None:
                        self.clock.charge("cache_hit")
                    if self.stats is not None:
                        self.stats.record_plan_fill("scope")
                    return stored
            return self._scope_value(label)

        with maybe_span(self.tracer, "cache.scope",
                        key=str(key)) as span:
            (ids, examined, pruned), hit = \
                self._scope_get_or_compute(key, compute)
            if span is not None:
                span.set("hit", hit)
                span.set("candidates", examined)
                span.set("pruned", pruned)
        self._slot_candidates += examined
        self._slot_pruned += pruned
        if self.stats is not None:
            self.stats.record_scope(hit)
        if hit and self.clock is not None:
            self.clock.charge("cache_hit")
        return [self.graph.vertex(i) for i in ids]

    def _scope_value(self, label: str) -> tuple[list[int], int, int]:
        """The uncached scope computation: candidate-index match +
        instance expansion, charging ``scope_scan`` and per-candidate
        ``vertex_match`` (the body of a scope-store miss)."""
        if self.clock is not None:
            self.clock.charge("scope_scan")
        match = self.graph.candidate_index.match(
            label, self.config.ld_threshold,
            include_synonyms=not _is_category(label),
        )
        if self.clock is not None:
            self.clock.charge("vertex_match", times=match.examined)
        direct: list[Vertex] = []
        for candidate in match.labels:
            direct.extend(self.graph.find_vertices(candidate))
        ids = [v.id for v in self._expand_to_instances(direct)]
        return ids, match.examined, match.pruned

    # ------------------------------------------------------------------
    # planner share phase (multi-query plan sharing)
    # ------------------------------------------------------------------
    def plan_scope_entry(
        self, label: str
    ) -> tuple[tuple, tuple[list[int], int, int]]:
        """Compute one shared scope node for the planner's share phase.

        Returns the exact ``(key, value)`` the scope store would hold
        after a miss on ``label``, charging the clock like that miss
        (``scope_scan`` + per-candidate ``vertex_match``) but touching
        no cache counters — the share phase is plan work, not a query
        request.
        """
        epoch = self._observe_epoch()
        key = ("scope", epoch, label.lower())
        return key, self._scope_value(label)

    def plan_neighborhood(
        self, direction: str, vertices: list[Vertex]
    ) -> list[RelationPair]:
        """Compute one shared neighborhood for the share phase.

        The full non-structural edge set on one side of a vertex set:
        ``direction="out"`` pairs each vertex with its out-neighbors
        (what the subject branches of ``_relation_pairs`` scan),
        ``"in"`` with its in-neighbors (the objects-only branch).
        Charges ``path_probe`` plus the true ``edge_scan`` mass, i.e.
        exactly what one cold path request over these endpoints pays —
        every *other* consumer of the result then derives its pairs by
        membership filtering instead of rescanning.
        """
        if direction not in ("out", "in"):
            raise ValueError(f"direction must be 'out' or 'in', "
                             f"got {direction!r}")
        if self.clock is not None:
            self.clock.charge("path_probe")
            if direction == "out":
                scans = sum(self.graph.out_degree(v.id) for v in vertices)
            else:
                scans = sum(self.graph.in_degree(v.id) for v in vertices)
            self.clock.charge("edge_scan", times=scans)
        if direction == "out":
            pairs = [
                RelationPair(vertex, edge, self.graph.vertex(edge.dst))
                for vertex in vertices
                for edge in self.graph.out_edges(vertex.id)
            ]
        else:
            pairs = [
                RelationPair(self.graph.vertex(edge.src), edge, vertex)
                for vertex in vertices
                for edge in self.graph.in_edges(vertex.id)
            ]
        return [p for p in pairs
                if p.edge.label not in _STRUCTURAL_LABELS]

    def _labels_match(self, query: str, candidate: str) -> bool:
        """``matchVertex``'s label test — the reference predicate.

        Production matching goes through the graph's
        :class:`~repro.graph.candidates.VertexCandidateIndex`, which
        must accept exactly the labels this predicate accepts (the
        index/scan equivalence property test holds the two together).

        Exact, number-normalized, and synonym matches always count;
        the normalized-Levenshtein fallback only applies to words of
        five or more characters, so short labels ("cat"/"car",
        "grass"/"dress") don't collide on one edit.
        """
        q = query.lower()
        c = candidate.lower()
        if q == c:
            return True
        if noun_singular(q) == noun_singular(c):
            return True
        if are_synonyms(q, c) and not _is_category(q):
            # a non-category query word reaches its cluster ("puppy"
            # finds dog instances); a category query ("girl") matches
            # exactly, so it neither bleeds into sibling categories
            # ("woman") nor climbs to a broad concept ("person")
            return True
        if min(len(q), len(c)) >= 5:
            return within_distance(q, c, self.config.ld_threshold)
        return False

    def _match_possessive(self, term: Term) -> list[Vertex]:
        """"Harry Potter's girlfriend": resolve the owner, follow its
        most similar out-edge, expand the targets."""
        epoch = self._observe_epoch()
        key = ("scope-poss", epoch, term.owner.lower(), term.head.lower())

        def compute() -> tuple[list[int], int, int]:
            base_candidates = self._slot_candidates
            base_pruned = self._slot_pruned
            owners = self.match_vertex_label(term.owner)
            examined = self._slot_candidates - base_candidates
            pruned = self._slot_pruned - base_pruned
            out_labels = sorted({
                edge.label
                for owner in owners
                for edge in self.graph.out_edges(owner.id)
                if edge.label not in _STRUCTURAL_LABELS
            })
            if not out_labels:
                # an owner with no candidate out-edges has nothing to
                # score: no embed_score charge, no maxScore call
                return [], examined, pruned
            if self._ann is not None:
                best, score, fresh, probes = \
                    self._ann.best(term.head, out_labels)
                self._charge_retrieval("possessive", fresh, probes)
            else:
                if self.clock is not None:
                    self.clock.charge("embed_score",
                                      times=len(out_labels))
                best, score = max_score(term.head, out_labels)
            targets: dict[int, Vertex] = {}
            if best is not None and \
                    score >= self.config.predicate_threshold:
                for owner in owners:
                    for edge in self.graph.out_edges(owner.id):
                        if edge.label == best:
                            vertex = self.graph.vertex(edge.dst)
                            targets.setdefault(vertex.id, vertex)
            expanded = self._expand_to_instances(list(targets.values()))
            return [v.id for v in expanded], examined, pruned

        base_candidates = self._slot_candidates
        base_pruned = self._slot_pruned
        with maybe_span(self.tracer, "cache.scope",
                        key=str(key)) as span:
            (ids, examined, pruned), hit = \
                self._scope_get_or_compute(key, compute)
            if span is not None:
                span.set("hit", hit)
                span.set("candidates", examined)
                span.set("pruned", pruned)
        # assignment, not +=: a miss already accumulated the nested
        # owner lookup's numbers, a hit replays the stored ones — both
        # land on the same total, keeping span attributes worker-count
        # invariant
        self._slot_candidates = base_candidates + examined
        self._slot_pruned = base_pruned + pruned
        if self.stats is not None:
            self.stats.record_scope(hit)
        if hit and self.clock is not None:
            self.clock.charge("cache_hit")
        return [self.graph.vertex(i) for i in ids]

    def _expand_to_instances(self, vertices: list[Vertex]) -> list[Vertex]:
        """Close the match set downward: concepts -> hyponym concepts
        (reverse ``is a``, up to ``expansion_hops`` levels) -> instances
        (one final reverse ``instance of`` sweep)."""
        result: dict[int, Vertex] = {v.id: v for v in vertices}
        frontier = list(vertices)
        for _ in range(self.config.expansion_hops):
            next_frontier: list[Vertex] = []
            for vertex in frontier:
                for edge in self.graph.in_edges(vertex.id):
                    if edge.label != IS_A:
                        continue
                    child = self.graph.vertex(edge.src)
                    if child.id not in result:
                        result[child.id] = child
                        next_frontier.append(child)
            if not next_frontier:
                break
            frontier = next_frontier
        for vertex in list(result.values()):
            for edge in self.graph.in_edges(vertex.id):
                if edge.label != INSTANCE_OF:
                    continue
                child = self.graph.vertex(edge.src)
                result.setdefault(child.id, child)
        return list(result.values())

    # ------------------------------------------------------------------
    # getRelationpairs + filter
    # ------------------------------------------------------------------
    def _relation_pairs(
        self,
        spoc: SPOC,
        binding: dict[str, list[str] | None],
        subjects: list[Vertex],
        objects: list[Vertex],
    ) -> list[RelationPair]:
        # the path key is epoch + (subject-key, object-key) — no
        # predicate.  Retrieval collects *every* relation between the
        # two endpoint sets; predicate filtering (maxScore) runs on
        # the retrieved pairs afterwards, so one cached neighborhood
        # serves every predicate over the same endpoints.  The epoch
        # retires cached neighborhoods when the graph mutates.
        key = (
            "path",
            self._observe_epoch(),
            self._slot_key(spoc.subject, binding["subject"]),
            self._slot_key(spoc.object, binding["object"]),
        )

        def compute() -> list[RelationPair]:
            if self.clock is not None:
                self.clock.charge("path_probe")
            # path-store miss: when the batch's plan overlay holds the
            # shared neighborhood of these endpoints, derive the exact
            # pair list by membership filtering (pair_filter per stored
            # pair) instead of rescanning the edge mass
            derived = self._pairs_from_overlay(
                spoc, binding, subjects, objects, epoch=key[1]
            )
            if derived is not None:
                return derived
            if self.clock is not None:
                # charge the edge mass of the branch actually taken:
                # the subject branches scan subject out-edges, but the
                # objects-only branch scans every object's *in*-edges
                # (charging subject out-degrees there billed zero work
                # while the scan still happened)
                if subjects:
                    scans = sum(self.graph.out_degree(v.id)
                                for v in subjects)
                else:
                    scans = sum(self.graph.in_degree(v.id)
                                for v in objects)
                self.clock.charge("edge_scan", times=scans)
            if subjects and objects:
                pairs = relations_between(self.graph, subjects, objects)
            elif subjects:
                pairs = [
                    RelationPair(subject, edge,
                                 self.graph.vertex(edge.dst))
                    for subject in subjects
                    for edge in self.graph.out_edges(subject.id)
                ]
            elif objects:
                pairs = [
                    RelationPair(self.graph.vertex(edge.src), edge, obj)
                    for obj in objects
                    for edge in self.graph.in_edges(obj.id)
                ]
            else:
                pairs = []
            return [p for p in pairs
                    if p.edge.label not in _STRUCTURAL_LABELS]

        with maybe_span(self.tracer, "cache.path",
                        key=str(key)) as span:
            pairs, hit = self._path_get_or_compute(key, compute)
            if span is not None:
                span.set("hit", hit)
        if self.stats is not None:
            self.stats.record_path(hit)
        if hit and self.clock is not None:
            self.clock.charge("cache_hit")
        # defensive copy: the cached list must never alias the list
        # handed to callers, or a later in-place mutation would
        # corrupt the cache entry for every subsequent hit
        return list(pairs)

    def _pairs_from_overlay(
        self,
        spoc: SPOC,
        binding: dict[str, list[str] | None],
        subjects: list[Vertex],
        objects: list[Vertex],
        epoch: int,
    ) -> list[RelationPair] | None:
        """Derive a path result from a shared neighborhood, if possible.

        Applies only when the branch ``_relation_pairs`` would take is
        anchored on a *static* plain term (no provider binding, no
        possessive) whose shared neighborhood is in the overlay under
        the same epoch, **and** the neighborhood was computed from
        exactly the vertex set resolved at runtime (degraded slot
        resolution — a retry-exhausted match falling back to an empty
        set — therefore falls through to the normal scan).  Returns
        ``None`` when no derivation applies; the caller then pays the
        ordinary edge-scan cost.
        """
        overlay = self.plan_overlay
        if overlay is None or overlay.epoch != epoch:
            return None
        if subjects:
            term = spoc.subject
            if binding["subject"] is not None or term is None \
                    or term.owner is not None:
                return None
            entry = overlay.neighborhood(
                ("nbr", epoch, "out", term.head.lower())
            )
            if entry is None:
                return None
            source_ids, stored = entry
            if source_ids != tuple(v.id for v in subjects):
                return None
            if self.clock is not None:
                self.clock.charge("pair_filter", times=len(stored))
            if self.stats is not None:
                self.stats.record_plan_fill("path")
            if objects:
                object_map = {v.id: v for v in objects}
                return [
                    RelationPair(p.subject, p.edge,
                                 object_map[p.edge.dst])
                    for p in stored if p.edge.dst in object_map
                ]
            return list(stored)
        if objects:
            term = spoc.object
            if binding["object"] is not None or term is None \
                    or term.owner is not None:
                return None
            entry = overlay.neighborhood(
                ("nbr", epoch, "in", term.head.lower())
            )
            if entry is None:
                return None
            source_ids, stored = entry
            if source_ids != tuple(v.id for v in objects):
                return None
            if self.clock is not None:
                self.clock.charge("pair_filter", times=len(stored))
            if self.stats is not None:
                self.stats.record_plan_fill("path")
            return list(stored)
        return None

    def _slot_key(
        self, term: Term | None, bound: list[str] | None
    ) -> tuple[str, ...]:
        if bound is not None:
            return tuple(sorted(label.lower() for label in bound))
        if term is None:
            return ("*",)
        return (term.head.lower(), term.owner.lower() if term.owner else "")

    def _charge_retrieval(self, site: str, fresh: int,
                          probes: int) -> None:
        """Charge one ANN-tier lookup: ``fresh`` scores computed for
        the first time cost the same ``embed_score`` the linear scan
        charged; ``probes`` memo hits cost the far cheaper
        ``ann_probe``.  Zero counts charge (and record) nothing."""
        if self.clock is not None:
            if fresh:
                self.clock.charge("embed_score", times=fresh)
            if probes:
                self.clock.charge("ann_probe", times=probes)
        if self.stats is not None:
            self.stats.record_retrieval(site, fresh, probes)

    def _filter_by_predicate(
        self, predicate: str, pairs: list[RelationPair]
    ) -> tuple[str | None, list[RelationPair]]:
        """Keep pairs whose edge label best matches the predicate."""
        if not pairs:
            return None, []
        labels = sorted({pair.edge.label for pair in pairs})
        if self._ann is not None:
            ranked, fresh, probes = self._ann.rank(predicate, labels)
            self._charge_retrieval("predicate", fresh, probes)
        else:
            if self.clock is not None:
                self.clock.charge("embed_score", times=len(labels))
            ranked = rank_scores(predicate, labels)
        best, best_score = ranked[0]
        if best_score < self.config.predicate_threshold:
            if self.stats is not None:
                self.stats.record_filter(len(pairs), 0)
            return None, []
        accepted = {
            label for label, score in ranked
            if score >= max(self.config.predicate_threshold,
                            best_score - 0.05)
        }
        kept = [p for p in pairs if p.edge.label in accepted]
        if self.stats is not None:
            self.stats.record_filter(len(pairs), len(kept))
        return best, kept

    def _be_pairs(
        self, subjects: list[Vertex], objects: list[Vertex]
    ) -> list[RelationPair]:
        """Identity/IS-A pairs for copular predicates ("Is X a cat?")."""
        object_ids = {v.id for v in objects}
        object_labels = {v.label.lower() for v in objects}
        pairs: list[RelationPair] = []
        for subject in subjects:
            if subject.label.lower() in object_labels:
                for obj in objects:
                    if obj.label.lower() == subject.label.lower() \
                            and obj.id != subject.id:
                        between = self.graph.edges_between(
                            subject.id, obj.id
                        )
                        pairs.append(RelationPair(
                            subject,
                            between[0] if between
                            else _virtual_edge(subject, obj),
                            obj,
                        ))
                        break
                continue
            for edge in self.graph.out_edges(subject.id):
                if edge.label in _STRUCTURAL_LABELS and \
                        edge.dst in object_ids:
                    pairs.append(RelationPair(
                        subject, edge, self.graph.vertex(edge.dst)
                    ))
        return pairs

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def _apply_constraint(
        self, spoc: SPOC, pairs: list[RelationPair]
    ) -> list[RelationPair]:
        if spoc.constraint is None or not pairs:
            return pairs
        if self._ann is not None:
            constraint, score, fresh, probes = self._ann.best(
                spoc.constraint, list(CONSTRAINT_WORDS)
            )
            self._charge_retrieval("constraint", fresh, probes)
        else:
            if self.clock is not None:
                self.clock.charge("embed_score",
                                  times=len(CONSTRAINT_WORDS))
            constraint, score = max_score(spoc.constraint,
                                          list(CONSTRAINT_WORDS))
        if constraint is None or score < self.config.constraint_threshold:
            return pairs
        keep_max = constraint.startswith("most")
        # group by the propagating slot's label — lowercased, like
        # every other label comparison in this file, so "Dog" and
        # "dog" pairs count as one group — weigh by distinct images
        slot = spoc.answer_role
        groups: dict[str, set] = {}
        for pair in pairs:
            vertex = pair.subject if slot == "subject" else pair.object
            evidence = pair.edge.props.get("image_id", pair.edge.id)
            groups.setdefault(vertex.label.lower(), set()).add(evidence)
        counts = Counter({label: len(ev) for label, ev in groups.items()})
        if not counts:
            return pairs
        ranked = counts.most_common()
        target = ranked[0][1] if keep_max else ranked[-1][1]
        winners = {label for label, count in ranked if count == target}
        if self.stats is not None:
            self.stats.record_constraint()
        return [
            pair for pair in pairs
            if (pair.subject if slot == "subject"
                else pair.object).label.lower() in winners
        ]

    # ------------------------------------------------------------------
    # answer-side helpers
    # ------------------------------------------------------------------
    def _is_kind_of(self, label: str, ancestor: str) -> bool:
        """Whether ``label`` is a kind of ``ancestor`` in the merged
        graph's ``is a`` hierarchy."""
        start_vertices = [
            v for v in self.graph.find_vertices(label)
        ]
        seen: set[int] = set()
        frontier = [v.id for v in start_vertices]
        target = ancestor.lower()
        hops = 0
        while frontier and hops <= self.config.expansion_hops + 1:
            next_frontier: list[int] = []
            for vertex_id in frontier:
                if vertex_id in seen:
                    continue
                seen.add(vertex_id)
                vertex = self.graph.vertex(vertex_id)
                if vertex.label.lower() == target:
                    return True
                for edge in self.graph.out_edges(vertex_id):
                    if edge.label in _STRUCTURAL_LABELS:
                        next_frontier.append(edge.dst)
            frontier = next_frontier
            hops += 1
        return False


def _is_category(label: str) -> bool:
    return noun_singular(label) in _CATEGORY_SET


def _category_set() -> frozenset[str]:
    from repro.synth.taxonomy import category_names

    return frozenset(category_names())


_CATEGORY_SET = _category_set()


def _virtual_edge(subject: Vertex, obj: Vertex) -> Edge:
    """A synthetic identity edge for label-equality "be" matches."""
    from repro.graph.model import Edge

    return Edge(-1, subject.id, obj.id, "be", {})
