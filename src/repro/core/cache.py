"""Caching: LFU / LRU stores and the key-centric scope/path cache (§V-B).

The executor's two expensive operations are cached:

* **scope** — ``matchVertex`` results: a term key -> the matched
  merged-graph vertex ids (the full label scan this avoids is the
  "scope" of the paper);
* **path** — ``getRelationpairs`` results: a (subject-key, object-key)
  pair -> the relation pairs (the neighborhood traversal this avoids
  is the "path").  The predicate is deliberately *not* part of the
  key: retrieval collects every relation between the two endpoint
  sets, and predicate filtering (``maxScore``) happens afterwards, so
  one cached neighborhood serves every predicate over the same
  endpoints.

Both sit on an evicting store; the paper uses LFU [39] and compares it
against LRU [47] in Figure 11, so both policies are implemented behind
one interface.

All stores are thread-safe: every ``get``/``put`` (and the hit/miss
counters) runs under a per-store lock, and ``KeyCentricCache`` offers
an atomic get-or-compute so concurrent misses on the same key perform
the expensive computation exactly once (the other threads wait for the
leader and receive its value, as a hit).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Callable, Hashable
from typing import Any

from repro.locks import note_read, note_write, wrap_lock


class EvictingCache:
    """Interface: a bounded key-value store with an eviction policy.

    Subclasses must guard every operation with ``self._lock`` so one
    store can be shared by a pool of worker threads.  ``name`` is the
    store's sanitizer role (``cache.scope`` / ``cache.path``); locks
    are created through :func:`repro.locks.wrap_lock`, so with no
    sanitizer installed this is the raw ``RLock``.
    """

    def __init__(self, capacity: int, *, name: str = "store") -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.hits = 0
        self.misses = 0
        self._lock = wrap_lock(threading.RLock(), f"cache.{name}")

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value, or ``None`` on a miss."""
        raise NotImplementedError

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting per the policy when full."""
        raise NotImplementedError

    def drop_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Remove every entry whose key satisfies ``predicate``;
        returns how many were dropped.  Hit/miss counters are
        untouched — retirement is not a lookup."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of entries currently stored."""
        raise NotImplementedError

    def counters(self) -> tuple[int, int]:
        """``(hits, misses)`` read atomically under the store lock."""
        with self._lock:
            return self.hits, self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        hits, misses = self.counters()
        total = hits + misses
        return hits / total if total else 0.0


class LFUCache(EvictingCache):
    """Least-Frequently-Used eviction; ties broken by recency (older
    first), which is the classic LFU-with-aging behaviour."""

    def __init__(self, capacity: int, *, name: str = "store") -> None:
        super().__init__(capacity, name=name)
        self._values: dict[Hashable, Any] = {}
        self._frequency: dict[Hashable, int] = {}
        self._clock = 0
        self._last_used: dict[Hashable, int] = {}

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``, bumping its frequency on a hit."""
        with self._lock:
            note_read(f"cache.{self.name}", key)
            if key not in self._values:
                self.misses += 1
                return None
            self.hits += 1
            self._touch(key)
            return self._values[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-frequent entry."""
        if self.capacity == 0:
            return
        with self._lock:
            note_write(f"cache.{self.name}", key)
            if key not in self._values and \
                    len(self._values) >= self.capacity:
                self._evict()
            self._values[key] = value
            self._touch(key)

    def _touch(self, key: Hashable) -> None:
        self._clock += 1
        self._frequency[key] = self._frequency.get(key, 0) + 1
        self._last_used[key] = self._clock

    def _evict(self) -> None:
        victim = min(
            self._values,
            key=lambda k: (self._frequency[k], self._last_used[k]),
        )
        del self._values[victim]
        del self._frequency[victim]
        del self._last_used[victim]

    def drop_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Remove every entry whose key satisfies ``predicate``."""
        with self._lock:
            note_write(f"cache.{self.name}")
            victims = [k for k in self._values if predicate(k)]
            for key in victims:
                del self._values[key]
                del self._frequency[key]
                del self._last_used[key]
            return len(victims)

    def __len__(self) -> int:
        """Number of entries currently stored."""
        with self._lock:
            return len(self._values)


class LRUCache(EvictingCache):
    """Least-Recently-Used eviction."""

    def __init__(self, capacity: int, *, name: str = "store") -> None:
        super().__init__(capacity, name=name)
        self._values: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``, marking it most recently used on a hit."""
        with self._lock:
            note_read(f"cache.{self.name}", key)
            if key not in self._values:
                self.misses += 1
                return None
            self.hits += 1
            self._values.move_to_end(key)
            return self._values[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recent entry."""
        if self.capacity == 0:
            return
        with self._lock:
            note_write(f"cache.{self.name}", key)
            if key in self._values:
                self._values.move_to_end(key)
            elif len(self._values) >= self.capacity:
                self._values.popitem(last=False)
            self._values[key] = value

    def drop_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Remove every entry whose key satisfies ``predicate``."""
        with self._lock:
            note_write(f"cache.{self.name}")
            victims = [k for k in self._values if predicate(k)]
            for key in victims:
                del self._values[key]
            return len(victims)

    def __len__(self) -> int:
        """Number of entries currently stored."""
        with self._lock:
            return len(self._values)


def make_cache(policy: str, capacity: int, *,
               name: str = "store") -> EvictingCache:
    """Factory: ``"lfu"`` or ``"lru"``."""
    if policy == "lfu":
        return LFUCache(capacity, name=name)
    if policy == "lru":
        return LRUCache(capacity, name=name)
    raise ValueError(f"unknown cache policy: {policy!r}")


class _InFlight:
    """A computation currently running for a cache key (single-flight)."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


@dataclass
class KeyCentricCache:
    """The §V-B two-level cache over matchVertex and getRelationpairs.

    ``enabled_scope`` / ``enabled_path`` allow the Figure-10(b)
    granularity ablation (No / Scope / Path / Both).

    The ``*_get_or_compute`` methods make miss-then-fill atomic under
    concurrency: the first thread to miss a key becomes the *leader*
    and runs the computation; threads that miss the same key while the
    leader is working wait for its result instead of recomputing, and
    observe it as a hit (the expensive work happened exactly once).
    """

    scope: EvictingCache
    path: EvictingCache
    enabled_scope: bool = True
    enabled_path: bool = True
    _inflight: dict[Hashable, _InFlight] = field(
        default_factory=dict, init=False, repr=False
    )
    _inflight_lock: Any = field(
        default_factory=lambda: wrap_lock(threading.Lock(),
                                          "cache.inflight"),
        init=False, repr=False,
    )

    @classmethod
    def create(
        cls,
        pool_size: int = 100,
        policy: str = "lfu",
        enabled_scope: bool = True,
        enabled_path: bool = True,
    ) -> KeyCentricCache:
        """Build scope and path stores of ``pool_size`` entries each."""
        return cls(
            scope=make_cache(policy, pool_size, name="scope"),
            path=make_cache(policy, pool_size, name="path"),
            enabled_scope=enabled_scope,
            enabled_path=enabled_path,
        )

    @classmethod
    def disabled(cls) -> KeyCentricCache:
        """A no-op cache: every lookup misses, nothing is stored."""
        return cls.create(pool_size=0, enabled_scope=False,
                          enabled_path=False)

    # scope ---------------------------------------------------------------
    def get_scope(self, key: Hashable) -> Any | None:
        """Scope-store lookup (``None`` when disabled or missing)."""
        if not self.enabled_scope:
            return None
        return self.scope.get(key)

    def put_scope(self, key: Hashable, value: Any) -> None:
        """Store a matchVertex scope result (no-op when disabled)."""
        if self.enabled_scope:
            self.scope.put(key, value)

    # path ----------------------------------------------------------------
    def get_path(self, key: Hashable) -> Any | None:
        """Path-store lookup (``None`` when disabled or missing)."""
        if not self.enabled_path:
            return None
        return self.path.get(key)

    def put_path(self, key: Hashable, value: Any) -> None:
        """Store a getRelationpairs result (no-op when disabled)."""
        if self.enabled_path:
            self.path.put(key, value)

    # atomic get-or-compute ------------------------------------------------
    def scope_get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """``(value, hit)`` for a scope key; computes at most once."""
        return self._get_or_compute(self.scope, self.enabled_scope,
                                    key, compute)

    def path_get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """``(value, hit)`` for a path key; computes at most once."""
        return self._get_or_compute(self.path, self.enabled_path,
                                    key, compute)

    def _get_or_compute(
        self,
        store: EvictingCache,
        enabled: bool,
        key: Hashable,
        compute: Callable[[], Any],
    ) -> tuple[Any, bool]:
        if not enabled:
            return compute(), False
        value = store.get(key)
        if value is not None:
            return value, True
        # single-flight: scope and path keys share the in-flight table
        # without colliding because every key is prefix-tagged
        with self._inflight_lock:
            note_write("cache.inflight", key)
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = _InFlight()
                self._inflight[key] = entry
        if leader:
            try:
                value = compute()
                entry.value = value
                store.put(key, value)
            except BaseException as exc:
                entry.error = exc
                raise
            finally:
                entry.done.set()
                with self._inflight_lock:
                    note_write("cache.inflight", key)
                    self._inflight.pop(key, None)
            return value, False
        entry.done.wait()
        if entry.error is not None:
            # the leader failed; fall back to computing independently
            return compute(), False
        return entry.value, True

    def retire_stale(self, epoch: int) -> int:
        """Drop every scope/path entry tagged with a graph epoch other
        than ``epoch``; returns how many entries were retired.

        Executor cache keys follow the ``(kind, epoch, ...)``
        convention (lint rule RP007), so staleness is decidable from
        the key alone — entries written under an older epoch describe a
        merged graph that no longer exists and must never be served.
        """
        def stale(key: Hashable) -> bool:
            return (
                isinstance(key, tuple)
                and len(key) >= 2
                and isinstance(key[1], int)
                and key[1] != epoch
            )

        dropped = 0
        if self.enabled_scope:
            dropped += self.scope.drop_where(stale)
        if self.enabled_path:
            dropped += self.path.drop_where(stale)
        return dropped

    @property
    def item_count(self) -> int:
        """Entries held across both stores."""
        return len(self.scope) + len(self.path)


@dataclass
class CacheReport:
    """Hit/miss statistics after a batch run."""

    scope_hits: int
    scope_misses: int
    path_hits: int
    path_misses: int

    @classmethod
    def from_cache(cls, cache: KeyCentricCache) -> CacheReport:
        """Snapshot the hit/miss counters of both stores."""
        scope_hits, scope_misses = cache.scope.counters()
        path_hits, path_misses = cache.path.counters()
        return cls(scope_hits, scope_misses, path_hits, path_misses)
