"""Data Aggregator: Algorithm 1 — merging scene graphs into ``G_mg``.

Every image's scene graph contributes *instance* vertices (one per
detection, labeled with the detected category) and intra-image relation
edges.  Instances are then linked to the knowledge graph's *concept*
vertices by ``instance of`` edges.

The linking is accelerated exactly as Algorithm 1 prescribes: the
categories that occur frequently across scene graphs (count > ``c'``)
get their k-hop KG subgraphs ``G[S(t, k)]`` extracted up front into a
cache list ``G_N``; the attach stage resolves each scene-graph vertex
against those cached subgraphs first and only falls back to a direct
KG lookup ("query from storage") for rare labels.  Subgraphs are
*views* (indexes over ``G``), not copies — matching the paper's note
that extraction "adds an index to G" rather than storing parts
independently.

Named-entity *annotations* (image metadata identifying, e.g., that the
man in image 7 is "Harry Potter") additionally link instances to KG
entity vertices — the movie scenario of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graph import Graph, SubgraphView, k_hop_subgraph
from repro.observability.spans import Tracer, maybe_span
from repro.simtime import SimClock
from repro.dataset.kg import INSTANCE_OF
from repro.vision.scene_graph import SceneGraphResult

if TYPE_CHECKING:
    from repro.resilience.manager import ResilienceManager


@dataclass
class MergeStats:
    """What the aggregation did — backs the §III-B coverage claims."""

    category_counts: dict[str, int]
    cached_categories: list[str]
    cached_type_fraction: float    # ~58% in the paper
    covered_vertex_fraction: float  # ~82% in the paper
    cache_links: int
    storage_links: int
    created_concepts: int

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the durable store's ``merged_meta``)."""
        return {
            "category_counts": dict(self.category_counts),
            "cached_categories": list(self.cached_categories),
            "cached_type_fraction": self.cached_type_fraction,
            "covered_vertex_fraction": self.covered_vertex_fraction,
            "cache_links": self.cache_links,
            "storage_links": self.storage_links,
            "created_concepts": self.created_concepts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> MergeStats:
        """Inverse of :meth:`to_dict`; raises ``KeyError`` on holes."""
        return cls(
            category_counts=dict(data["category_counts"]),  # type: ignore[call-overload]
            cached_categories=list(data["cached_categories"]),  # type: ignore[call-overload]
            cached_type_fraction=float(data["cached_type_fraction"]),  # type: ignore[arg-type]
            covered_vertex_fraction=float(data["covered_vertex_fraction"]),  # type: ignore[arg-type]
            cache_links=int(data["cache_links"]),  # type: ignore[call-overload]
            storage_links=int(data["storage_links"]),  # type: ignore[call-overload]
            created_concepts=int(data["created_concepts"]),  # type: ignore[call-overload]
        )


@dataclass
class MergedGraph:
    """``G_mg``: the KG with all scene graphs attached.

    ``skipped_images`` lists image ids the resilience layer dropped
    (detector failed permanently upstream, or the merge of that scene
    graph exhausted its retries) — the graph is then *partial* and
    answers touching those images degrade rather than crash.
    """

    graph: Graph
    stats: MergeStats
    instance_ids: list[int] = field(default_factory=list)
    skipped_images: list[int] = field(default_factory=list)

    @property
    def is_partial(self) -> bool:
        """True when at least one image was skipped during merging."""
        return bool(self.skipped_images)

    @property
    def edge_labels(self) -> list[str]:
        """All edge labels ``T`` (Algorithm 3, line 2)."""
        return list(self.graph.edge_labels.labels())

    def meta_dict(self) -> dict[str, object]:
        """The non-graph bookkeeping, JSON-ready.

        Written into the durable store's ``merged_meta`` snapshot
        record so a warm-started server can reconstruct the full
        :class:`MergedGraph` without re-running the vision pipeline.
        """
        return {
            "stats": self.stats.to_dict(),
            "instance_ids": list(self.instance_ids),
            "skipped_images": list(self.skipped_images),
        }

    @classmethod
    def from_snapshot(
        cls, graph: Graph, meta: dict[str, object]
    ) -> MergedGraph:
        """Rebuild a :class:`MergedGraph` from a recovered graph plus
        the snapshot's ``merged_meta`` record (inverse of
        :meth:`meta_dict`); raises ``KeyError`` on missing fields."""
        return cls(
            graph=graph,
            stats=MergeStats.from_dict(meta["stats"]),  # type: ignore[arg-type]
            instance_ids=list(meta["instance_ids"]),  # type: ignore[call-overload]
            skipped_images=list(meta["skipped_images"]),  # type: ignore[call-overload]
        )


@dataclass
class AggregatorConfig:
    """Algorithm 1 parameters (§III-B: k=2, c'=5 in MVQA)."""

    frequency_threshold: int = 5  # c'
    subgraph_hops: int = 2        # k
    use_cache: bool = True


@dataclass
class _AttachTallies:
    """Mutable counters shared across per-image attach calls."""

    cache_links: int = 0
    storage_links: int = 0
    created: int = 0
    covered_vertices: int = 0
    total_vertices: int = 0


class DataAggregator:
    """Builds the merged graph from scene graphs + a knowledge graph."""

    def __init__(
        self,
        kg: Graph,
        config: AggregatorConfig | None = None,
        clock: SimClock | None = None,
        resilience: ResilienceManager | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.kg = kg
        self.config = config or AggregatorConfig()
        self.clock = clock
        self.resilience = resilience
        self.tracer = tracer

    def merge(
        self,
        scene_graphs: list[SceneGraphResult],
        annotations: dict[tuple[int, str], str] | None = None,
        skipped_images: list[int] | None = None,
    ) -> MergedGraph:
        """Algorithm 1: align all scene graphs with the KG.

        ``annotations`` maps ``(image_id, detected_label)`` to an entity
        name — external identity metadata for the movie scenario.
        ``skipped_images`` carries image ids already dropped upstream
        (SGG); images whose merge fails permanently under the
        resilience manager join the list, and the result is *partial*.
        """
        annotations = annotations or {}
        skipped: list[int] = list(skipped_images or [])
        graph = _copy_graph(self.kg, name="merged-graph")
        concept_by_label = {
            v.label: v.id for v in graph.vertices()
        }

        # ----- Initial stage (lines 1-7): category stats + subgraph cache
        category_counts = _count_categories(scene_graphs)
        cache: list[SubgraphView] = []
        cached_categories: list[str] = []
        if self.config.use_cache:
            for category, count in sorted(category_counts.items(),
                                          key=lambda kv: -kv[1]):
                if count <= self.config.frequency_threshold:
                    continue
                anchor = concept_by_label.get(category)
                if anchor is None:
                    continue
                if self.clock is not None:
                    self.clock.charge("subgraph_extract")
                cache.append(k_hop_subgraph(graph, anchor,
                                            self.config.subgraph_hops))
                cached_categories.append(category)

        cached_vertex_labels: set[str] = set()
        for view in cache:
            cached_vertex_labels.update(view.label_index)

        # ----- Attach stage (lines 8-16): link every scene-graph vertex
        tallies = _AttachTallies()
        instance_ids: list[int] = []

        for scene_graph in scene_graphs:
            with maybe_span(self.tracer, "aggregate.merge",
                            image=scene_graph.image_id):
                if self.resilience is None:
                    self._attach_scene_graph(
                        graph, scene_graph, annotations, cache,
                        cached_vertex_labels, concept_by_label,
                        instance_ids, tallies,
                    )
                    continue
                # fault checks happen before the attach closure runs,
                # so a skipped image never leaves half-merged vertices
                # behind
                self.resilience.call(
                    "aggregator.merge", scene_graph.image_id,
                    lambda sg=scene_graph: self._attach_scene_graph(
                        graph, sg, annotations, cache,
                        cached_vertex_labels, concept_by_label,
                        instance_ids, tallies,
                    ),
                    clock=self.clock,
                    fallback=lambda sg=scene_graph:
                        skipped.append(sg.image_id),
                )

        type_fraction = (
            len(cached_categories) / len(category_counts)
            if category_counts else 0.0
        )
        vertex_fraction = (
            tallies.covered_vertices / tallies.total_vertices
            if tallies.total_vertices else 0.0
        )
        stats = MergeStats(
            category_counts=category_counts,
            cached_categories=cached_categories,
            cached_type_fraction=type_fraction,
            covered_vertex_fraction=vertex_fraction,
            cache_links=tallies.cache_links,
            storage_links=tallies.storage_links,
            created_concepts=tallies.created,
        )
        return MergedGraph(graph=graph, stats=stats,
                           instance_ids=instance_ids,
                           skipped_images=sorted(set(skipped)))

    def _attach_scene_graph(
        self,
        graph: Graph,
        scene_graph: SceneGraphResult,
        annotations: dict[tuple[int, str], str],
        cache: list[SubgraphView],
        cached_vertex_labels: set[str],
        concept_by_label: dict[str, int],
        instance_ids: list[int],
        tallies: _AttachTallies,
    ) -> None:
        """Attach one image's scene graph (the loop body of lines 8-16)."""
        local: dict[int, int] = {}
        for detection in scene_graph.detections:
            tallies.total_vertices += 1
            name = annotations.get(
                (scene_graph.image_id, detection.label)
            )
            label = name if name is not None else detection.label
            instance = graph.add_vertex(label, {
                "kind": "instance",
                "image_id": scene_graph.image_id,
                "det_index": detection.index,
                "category": detection.label,
            })
            instance_ids.append(instance.id)
            local[detection.index] = instance.id

            concept_id = self._resolve_concept(
                graph, cache, concept_by_label, detection.label
            )
            if concept_id is None:
                # not even storage knows this label: create a fresh
                # concept so the merged graph stays connected
                concept_id = graph.add_vertex(
                    detection.label, {"kind": "concept"}
                ).id
                concept_by_label[detection.label] = concept_id
                tallies.created += 1
            elif detection.label in cached_vertex_labels:
                tallies.cache_links += 1
                tallies.covered_vertices += 1
            else:
                tallies.storage_links += 1
            if self.clock is not None:
                self.clock.charge("merge_link")
            graph.add_edge(instance.id, concept_id, INSTANCE_OF)

            if name is not None:
                entity_id = concept_by_label.get(name)
                if entity_id is None:
                    entity_id = graph.add_vertex(
                        name, {"kind": "entity"}
                    ).id
                    concept_by_label[name] = entity_id
                    tallies.created += 1
                graph.add_edge(instance.id, entity_id, INSTANCE_OF)

        for relation in scene_graph.relations:
            if relation.src in local and relation.dst in local:
                graph.add_edge(
                    local[relation.src], local[relation.dst],
                    relation.predicate,
                    {"image_id": scene_graph.image_id,
                     "score": relation.score},
                )

    def _resolve_concept(
        self,
        graph: Graph,
        cache: list[SubgraphView],
        concept_by_label: dict[str, int],
        label: str,
    ) -> int | None:
        """Find the concept vertex for ``label``: cache first, then
        storage (lines 9-14)."""
        for view in cache:
            matches = view.find_vertices(label)
            if matches:
                if self.clock is not None:
                    self.clock.charge("cache_hit")
                return matches[0].id
        if self.clock is not None:
            self.clock.charge("kg_lookup")
        return concept_by_label.get(label)


def _count_categories(
    scene_graphs: list[SceneGraphResult]
) -> dict[str, int]:
    counts: dict[str, int] = {}
    for scene_graph in scene_graphs:
        for detection in scene_graph.detections:
            counts[detection.label] = counts.get(detection.label, 0) + 1
    return counts


def _copy_graph(source: Graph, name: str) -> Graph:
    copy = Graph(name=name)
    for vertex in source.vertices():
        copy.add_vertex(vertex.label, vertex.props, vertex_id=vertex.id)
    for edge in source.edges():
        copy.add_edge(edge.src, edge.dst, edge.label, edge.props)
    return copy
