"""The SVQA facade: images + knowledge graph -> answers (Figure 2).

``SVQA`` wires the full stack together:

* **build** — run scene-graph generation over every image and merge
  the results with the knowledge graph (Data Aggregator, §III);
* **answer** — decompose a question into a query graph (§IV) and
  execute it over the merged graph (§V);
* **answer_many** — the multi-query path with the §V-B optimizations:
  key-centric caching, frequency-ratio scheduling, and concurrent
  execution on a configurable worker pool (``SVQAConfig.workers``).

All latencies are accounted on a :class:`~repro.simtime.SimClock`
(see that module for why), and every answer carries its own simulated
latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import QueryError, ReproError
from repro.graph import Graph
from repro.observability.config import ObservabilityConfig
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import (
    Span,
    Tracer,
    maybe_span,
    maybe_trace,
)
from repro.resilience.events import FaultEvent
from repro.resilience.manager import ResilienceConfig, ResilienceManager
from repro.retrieval.config import RetrievalConfig
from repro.simtime import SimClock
from repro.synth.scene import SyntheticScene
from repro.vision.detector import DetectorConfig, SimulatedDetector
from repro.vision.relation import MODELS, RelationPredictor
from repro.vision.scene_graph import SGGConfig, SGGPipeline, SceneGraphResult
from repro.core.aggregator import AggregatorConfig, DataAggregator, MergedGraph
from repro.core.answer import Answer, fallback_answer
from repro.core.batch import BatchExecutor, BatchResult
from repro.core.cache import CacheReport, KeyCentricCache
from repro.core.executor import ExecutorConfig, QueryGraphExecutor
from repro.core.planner import (
    PlannedBatch,
    PlannerConfig,
    PlanOverlay,
    build_forest,
    build_plans,
    execute_shared,
    plan_order,
)
from repro.core.query_graph import generate_query_graph
from repro.core.scheduler import schedule_queries
from repro.core.spoc import QueryGraph
from repro.core.stats import ExecutorStats, ExecutorStatsReport

if TYPE_CHECKING:
    from repro.analysis.concurrency.sanitizer import (
        Sanitizer,
        SanitizerConfig,
    )


@dataclass
class SVQAConfig:
    """End-to-end configuration of the SVQA system."""

    relation_model: str = "neural-motifs"
    use_tde: bool = True
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    sgg: SGGConfig = field(default_factory=SGGConfig)
    aggregator: AggregatorConfig = field(default_factory=AggregatorConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    cache_pool_size: int = 100
    cache_policy: str = "lfu"
    enable_scope_cache: bool = True
    enable_path_cache: bool = True
    enable_scheduler: bool = True
    workers: int = 1  # worker threads for answer_many (1 = serial)
    #: cost-based multi-query planner (cross-query plan sharing +
    #: affinity ordering); ``None`` keeps the batch path bit-identical
    #: to the pre-planner system — same answers, span multisets, and
    #: metric families
    planner: PlannerConfig | None = None
    #: ANN retrieval tier (score-memo embedding lookups + BM25-ranked
    #: degraded fallback); ``None`` keeps every output bit-identical
    #: to the pre-retrieval system — the indexes are maintained but
    #: never consulted
    retrieval: RetrievalConfig | None = None
    #: resilience layer (fault injection / retry / deadline / breaker);
    #: ``None`` keeps the whole layer strictly zero-cost
    resilience: ResilienceConfig | None = None
    #: observability layer (span tracing); ``None`` keeps the off path
    #: bit-identical — no tracer is even constructed
    observability: ObservabilityConfig | None = None
    #: runtime lock/race sanitizer ("tsan-lite"); ``None`` keeps every
    #: lock raw and every note hook a single ``is None`` check, so
    #: answers are bit-identical with the sanitizer disabled
    sanitizer: SanitizerConfig | None = None


class SVQA:
    """The complete system of the paper.

    >>> from repro.dataset.kg import build_commonsense_kg
    >>> from repro.synth import SceneGenerator
    >>> scenes = SceneGenerator(seed=0).generate_pool(10)
    >>> svqa = SVQA(scenes, build_commonsense_kg())
    >>> svqa.build()                                    # doctest: +SKIP
    >>> svqa.answer("Is there a dog near the fence?")   # doctest: +SKIP
    """

    def __init__(
        self,
        scenes: list[SyntheticScene],
        kg: Graph,
        config: SVQAConfig | None = None,
        clock: SimClock | None = None,
        annotations: dict[tuple[int, str], str] | None = None,
    ) -> None:
        self.scenes = scenes
        self.kg = kg
        self.config = config or SVQAConfig()
        self.clock = clock if clock is not None else SimClock()
        self.annotations = annotations
        self.merged: MergedGraph | None = None
        self.scene_graphs: list[SceneGraphResult] | None = None
        # install the sanitizer (if configured) before any lock is
        # constructed, so every wrap_lock below sees the observer;
        # the import is lazy to keep repro.core a leaf of
        # repro.analysis (which imports core for the query rules)
        self.sanitizer: Sanitizer | None = None
        if self.config.sanitizer is not None:
            from repro import locks
            from repro.analysis.concurrency.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self.config.sanitizer)
            locks.install(self.sanitizer)
        self._cache = self._make_cache()
        self._executor: QueryGraphExecutor | None = None
        self._stats = ExecutorStats()
        self._last_batch: BatchResult | None = None
        self._last_plan: PlannedBatch | None = None
        self.tracer: Tracer | None = None
        self._trace_seq = 0
        self._plan_seq = 0
        obs = self.config.observability
        if obs is not None and obs.trace:
            self.tracer = Tracer(
                max_spans_per_trace=obs.max_spans_per_trace
            )
        self.resilience: ResilienceManager | None = None
        if self.config.resilience is not None:
            self.resilience = ResilienceManager(self.config.resilience,
                                                stats=self._stats,
                                                tracer=self.tracer)

    def release_sanitizer(self) -> None:
        """Deactivate this instance's sanitizer (idempotent).

        The observer seam is process-wide, so a sanitized SVQA owns
        it until released; call this before building another
        sanitized instance (``repro sanitize`` and the sanitizer
        tests run workloads back to back).
        """
        if self.sanitizer is not None:
            from repro import locks

            locks.uninstall(self.sanitizer)

    def _make_cache(self) -> KeyCentricCache:
        config = self.config
        if not (config.enable_scope_cache or config.enable_path_cache):
            return KeyCentricCache.disabled()
        return KeyCentricCache.create(
            pool_size=config.cache_pool_size,
            policy=config.cache_policy,
            enabled_scope=config.enable_scope_cache,
            enabled_path=config.enable_path_cache,
        )

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------
    def build(self) -> MergedGraph:
        """Scene-graph generation + graph merging (query-independent).

        Images and graph are query-independent (Assumption 1), so this
        runs once, before any question arrives.
        """
        spec = MODELS.get(self.config.relation_model)
        if spec is None:
            raise QueryError(
                f"unknown relation model: {self.config.relation_model!r}"
            )
        with maybe_trace(self.tracer, "build", self.clock), \
                maybe_span(self.tracer, "build",
                           images=len(self.scenes)) as span:
            self.clock.charge("model_load_sgg")
            sgg_config = SGGConfig(**{
                **self.config.sgg.__dict__,
                "use_tde": self.config.use_tde,
            })
            pipeline = SGGPipeline(
                SimulatedDetector(self.config.detector),
                RelationPredictor(spec),
                sgg_config,
                clock=self.clock,
                resilience=self.resilience,
            )
            self.scene_graphs = pipeline.run_many(self.scenes)
            aggregator = DataAggregator(
                self.kg, self.config.aggregator, clock=self.clock,
                resilience=self.resilience, tracer=self.tracer,
            )
            self.merged = aggregator.merge(
                self.scene_graphs, self.annotations,
                skipped_images=pipeline.skipped_images,
            )
            if span is not None:
                span.set("vertices", self.merged.graph.vertex_count)
                span.set("skipped",
                         len(self.merged.skipped_images))
        self._executor = QueryGraphExecutor(
            self.merged, cache=self._cache, clock=self.clock,
            config=self.config.executor, stats=self._stats,
            resilience=self.resilience, tracer=self.tracer,
            retrieval=self.config.retrieval,
        )
        return self.merged

    def adopt_merged(self, merged: MergedGraph) -> MergedGraph:
        """Install an already-built merged graph (warm start).

        The durable-store path: a recovered snapshot+WAL replay yields
        the same :class:`MergedGraph` that :meth:`build` would have
        produced, so the vision pipeline (detector, relation
        predictor, aggregator) is skipped entirely.  Answering is
        bit-identical to the cold path because the snapshot preserves
        vertex/edge insertion order, ids, and the graph epoch.
        """
        self.merged = merged
        self.scene_graphs = None
        self._executor = QueryGraphExecutor(
            merged, cache=self._cache, clock=self.clock,
            config=self.config.executor, stats=self._stats,
            resilience=self.resilience, tracer=self.tracer,
            retrieval=self.config.retrieval,
        )
        return merged

    def _require_built(self) -> QueryGraphExecutor:
        if self._executor is None:
            raise QueryError("call build() before answering questions")
        return self._executor

    def _next_trace_ids(self, count: int) -> list[str]:
        """Allocate ``count`` sequential ``q0000``-style trace ids.

        Ids are unique across the system's lifetime so repeated
        ``answer``/``answer_many`` calls never collide in the span
        export.
        """
        start = self._trace_seq
        self._trace_seq += count
        return [f"q{start + i:04d}" for i in range(count)]

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------
    def parse_question(self, question: str) -> QueryGraph:
        """§IV: question -> ordered query graph."""
        return generate_query_graph(question, clock=self.clock,
                                    tracer=self.tracer)

    def _parse_resilient(
        self, question: str, events: list[FaultEvent]
    ) -> tuple[QueryGraph | None, float | None]:
        """Parse under the ``parse.question`` fault site.

        Returns ``(graph, confidence_cap)``: ``None`` cap means a
        clean parse.  When the grammar (or an injected fault,
        permanently) rejects the question, the degraded fallback
        supplies a single-clause graph and the cap its answers'
        confidence ceiling: with the retrieval tier enabled,
        :func:`~repro.resilience.degrade.retrieval_query_graph`
        BM25-grounds the query and the cap is its normalized
        retrieval score; otherwise (or when retrieval finds nothing)
        :func:`~repro.resilience.degrade.keyword_query_graph` supplies
        the flat ``KEYWORD_FALLBACK_CONFIDENCE``.  ``(None, None)``
        means every rung failed and the caller answers ``"unknown"``.
        """
        manager = self.resilience
        assert manager is not None
        try:
            graph = manager.call(
                "parse.question", question,
                lambda: generate_query_graph(question, clock=self.clock,
                                             tracer=self.tracer),
                clock=self.clock, events=events,
            )
            return graph, None
        except ReproError as exc:
            events.append(FaultEvent(
                "parse.question", "error",
                detail=f"{type(exc).__name__}: {exc}",
            ))
        if manager.config.degrade_parse:
            if self.config.retrieval is not None and \
                    self.merged is not None:
                from repro.resilience.degrade import retrieval_query_graph

                found = retrieval_query_graph(
                    question, self.merged.graph, self.config.retrieval
                )
                if found is not None:
                    graph, confidence = found
                    events.append(FaultEvent(
                        "parse.question", "degraded",
                        detail="retrieval-ranked fallback "
                               f"(confidence={confidence:.3f})",
                    ))
                    self._stats.record_retrieval_fallback(
                        "ranked", confidence
                    )
                    return graph, confidence
                self._stats.record_retrieval_fallback("empty")
            from repro.resilience.degrade import (
                KEYWORD_FALLBACK_CONFIDENCE,
                keyword_query_graph,
            )

            graph = keyword_query_graph(question)
            if graph is not None:
                events.append(FaultEvent("parse.question", "degraded",
                                         detail="keyword-match fallback"))
                return graph, KEYWORD_FALLBACK_CONFIDENCE
        return None, None

    def _mark_parse_degraded(self, answer: Answer, cap: float) -> None:
        answer.confidence = min(answer.confidence, cap)
        if not answer.degraded:
            answer.degraded = True
            self._stats.record_degraded()

    def answer(
        self, question: str, deadline: float | None = None
    ) -> Answer:
        """Answer one complex question.

        With :attr:`SVQAConfig.resilience` configured this walks the
        degradation ladder instead of raising: parse failures fall back
        to a keyword-match query, executor crashes become attributed
        ``"unknown"`` answers, and every salvaged answer carries its
        :class:`~repro.resilience.events.FaultEvent` provenance.

        ``deadline`` is a per-question budget in simulated seconds
        (the serving layer maps the ``Deadline-Ms`` request header
        here); execution past the budget is cut off with the best
        partial, degraded answer.
        """
        executor = self._require_built()
        trace_id = self._next_trace_ids(1)[0]
        start = self.clock.snapshot()
        with maybe_trace(self.tracer, trace_id, self.clock), \
                maybe_span(self.tracer, "question",
                           question=question) as span:
            answer = self._answer_inner(question, executor, deadline)
            answer.latency = start.interval
            if span is not None:
                span.set("answer", answer.value)
                span.set("degraded", answer.degraded)
        self._stats.record_latency(answer.latency)
        return answer

    def _answer_inner(
        self, question: str, executor: QueryGraphExecutor,
        deadline: float | None = None,
    ) -> Answer:
        if self.resilience is None:
            query_graph = self.parse_question(question)
            return executor.execute(query_graph, deadline_limit=deadline)

        from repro.resilience.degrade import classify_question_text

        events: list[FaultEvent] = []
        query_graph, parse_cap = self._parse_resilient(question, events)
        if query_graph is None:
            answer = fallback_answer(classify_question_text(question),
                                     events)
            self._stats.record_degraded()
        else:
            try:
                answer = executor.execute(query_graph,
                                          deadline_limit=deadline)
            except ReproError as exc:
                events.append(FaultEvent(
                    "executor.execute", "error",
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                answer = fallback_answer(classify_question_text(question),
                                         events)
                self._stats.record_degraded()
            else:
                if events:
                    answer.fault_events = events + answer.fault_events
                if parse_cap is not None:
                    self._mark_parse_degraded(answer, parse_cap)
        return answer

    def answer_query_graph(self, query_graph: QueryGraph) -> Answer:
        """Execute an already-parsed query graph."""
        executor = self._require_built()
        trace_id = self._next_trace_ids(1)[0]
        start = self.clock.snapshot()
        with maybe_trace(self.tracer, trace_id, self.clock), \
                maybe_span(self.tracer, "question",
                           question=query_graph.question):
            answer = executor.execute(query_graph)
        answer.latency = start.interval
        self._stats.record_latency(answer.latency)
        return answer

    def answer_many(
        self,
        questions: list[str],
        workers: int | None = None,
        deadlines: list[float | None] | None = None,
    ) -> list[Answer]:
        """Answer a batch with the §V-B multi-query optimizations.

        Query graphs are generated for all questions, scheduled by
        frequency ratio (when enabled), executed in that order against
        the shared thread-safe key-centric cache on ``workers`` pool
        threads (``workers=1``, the default, runs serially in the
        calling thread), and returned in input order.  Each worker
        charges a private :class:`~repro.simtime.SimClock` shard; the
        shards fold back into this system's clock, so ``elapsed``
        keeps measuring total simulated work.  The makespan / measured
        wall-clock view of the same run is on :attr:`last_batch`.

        ``deadlines`` optionally gives each question its own simulated
        -seconds budget (the serving layer's per-request ``Deadline-Ms``
        headers land here); deadline-killed slots stay aligned,
        answering with the best partial, degraded answer.
        """
        workers = self.config.workers if workers is None else workers
        self._require_built()
        if deadlines is not None and len(deadlines) != len(questions):
            raise ValueError(
                f"deadlines must align with questions: "
                f"{len(deadlines)} != {len(questions)}"
            )
        trace_ids = self._next_trace_ids(len(questions))
        graphs: list[QueryGraph | None] = []
        pre_events: list[list[FaultEvent]] = []
        parse_caps: list[float | None] = []
        for i, question in enumerate(questions):
            events: list[FaultEvent] = []
            # the parse phase runs on the main thread; its trace
            # segment precedes the worker-side execute segment of the
            # same question id (segments are ordered by entry sequence)
            with maybe_trace(self.tracer, trace_ids[i], self.clock), \
                    maybe_span(self.tracer, "question",
                               question=question):
                if self.resilience is None:
                    try:
                        graphs.append(self.parse_question(question))
                    except ReproError:
                        # any pipeline error (parse, tokenization, ...)
                        # must cost the batch one slot, never the whole
                        # batch
                        graphs.append(None)
                    cap = None
                else:
                    graph, cap = self._parse_resilient(question,
                                                       events)
                    graphs.append(graph)
            pre_events.append(events)
            parse_caps.append(cap)

        order = list(range(len(questions)))
        overlay: PlanOverlay | None = None
        if self.config.planner is not None:
            order, overlay = self._plan_batch(graphs)
        elif self.config.enable_scheduler:
            valid = [i for i, g in enumerate(graphs) if g is not None]
            plan = schedule_queries([graphs[i] for i in valid])
            order = [valid[i] for i in plan.order] + \
                [i for i, g in enumerate(graphs) if g is None]

        batch = BatchExecutor(
            self.merged, cache=self._cache,
            config=self.config.executor, workers=workers,
            costs=self.clock.costs, stats=self._stats,
            resilience=self.resilience, tracer=self.tracer,
            plan_overlay=overlay, retrieval=self.config.retrieval,
        )
        result = batch.run(graphs, order=order, trace_ids=trace_ids,
                           deadlines=deadlines)
        result.merge_into(self.clock)
        self._last_batch = result
        if self.resilience is not None:
            self._attach_batch_provenance(
                result, questions, graphs, pre_events, parse_caps
            )
        return result.answers

    def _plan_batch(
        self, graphs: list[QueryGraph | None]
    ) -> tuple[list[int], PlanOverlay]:
        """The cost-based planner path of :meth:`answer_many`.

        Canonicalizes the parsed graphs under the current graph epoch,
        detects structurally shared sub-plans across the batch,
        executes each shared node exactly once on the main thread (the
        ``planner.share`` span, charged to the aggregate clock), and
        chooses an affinity-clustered execution order.  Returns the
        submission order plus the frozen fan-out overlay the batch's
        executors will consult; unparseable slots go last, exactly as
        on the scheduler path.
        """
        config = self.config.planner
        assert config is not None
        assert self.merged is not None
        valid = [i for i, g in enumerate(graphs) if g is not None]
        valid_graphs: list[QueryGraph] = \
            [g for g in graphs if g is not None]
        epoch = self.merged.graph.epoch
        plans = build_plans(valid_graphs, epoch)
        forest = build_forest(plans, epoch,
                              threshold=config.share_threshold)
        positions = plan_order(plans, forest, reorder=config.reorder)
        order = [valid[p] for p in positions] + \
            [i for i, g in enumerate(graphs) if g is None]
        overlay = PlanOverlay(epoch)
        share_executor = QueryGraphExecutor(
            self.merged, cache=self._cache, clock=self.clock,
            config=self.config.executor, stats=self._stats,
            resilience=self.resilience, tracer=self.tracer,
            retrieval=self.config.retrieval,
        )
        trace_id = f"plan{self._plan_seq:04d}"
        self._plan_seq += 1
        with maybe_trace(self.tracer, trace_id, self.clock), \
                maybe_span(self.tracer, "planner.share",
                           queries=len(valid_graphs)) as span:
            share = execute_shared(forest, share_executor, overlay,
                                   stats=self._stats)
            if span is not None:
                span.set("shared_scopes", share.shared_scopes)
                span.set("shared_neighborhoods",
                         share.shared_neighborhoods)
        overlay.freeze()
        self._stats.record_plan_batch(forest.node_counts())
        self._last_plan = PlannedBatch(forest=forest,
                                       positions=positions,
                                       order=order, share=share)
        return order, overlay

    def _attach_batch_provenance(
        self,
        result: BatchResult,
        questions: list[str],
        graphs: list[QueryGraph | None],
        pre_events: list[list[FaultEvent]],
        parse_caps: list[float | None],
    ) -> None:
        """Fold parse-stage fault provenance into the batch's answers."""
        from repro.resilience.degrade import classify_question_text

        for i, answer in enumerate(result.answers):
            if graphs[i] is None:
                # replace the bare "unknown" slot with an attributed one
                salvaged = fallback_answer(
                    classify_question_text(questions[i]), pre_events[i]
                )
                salvaged.latency = answer.latency
                result.answers[i] = salvaged
                self._stats.record_degraded()
                continue
            if pre_events[i]:
                answer.fault_events = pre_events[i] + answer.fault_events
            cap = parse_caps[i]
            if cap is not None:
                self._mark_parse_degraded(answer, cap)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cache_report(self) -> CacheReport:
        """Scope/path hit statistics accumulated so far."""
        return CacheReport.from_cache(self._cache)

    def execution_report(self) -> ExecutionReport:
        """Successor of :meth:`cache_report`: cache hit statistics
        plus the executor's observability counters and (when
        ``answer_many`` has run) the latest batch's latency figures."""
        return ExecutionReport(
            cache=CacheReport.from_cache(self._cache),
            stats=self._stats.snapshot(),
            last_batch=self._last_batch,
        )

    @property
    def last_batch(self) -> BatchResult | None:
        """The most recent ``answer_many`` run's :class:`BatchResult`."""
        return self._last_batch

    @property
    def last_plan(self) -> PlannedBatch | None:
        """The most recent planned batch (``None`` when the planner is
        off or no batch has run)."""
        return self._last_plan

    @property
    def stats(self) -> ExecutorStats:
        """The shared execution-stats collector (metrics facade)."""
        return self._stats

    @property
    def metrics(self) -> MetricsRegistry:
        """The system-wide metrics registry behind :attr:`stats`."""
        return self._stats.registry

    def metrics_snapshot(self) -> dict[str, object]:
        """JSON-ready registry dump (refreshes derived gauges first)."""
        self._stats.snapshot()
        return self._stats.registry.to_json()

    def metrics_exposition(self) -> str:
        """Prometheus text exposition (refreshes derived gauges first)."""
        self._stats.snapshot()
        return self._stats.registry.to_prometheus()

    def finished_spans(self) -> list[Span]:
        """Every recorded span, canonically ordered (empty when
        observability is off)."""
        if self.tracer is None:
            return []
        return self.tracer.finished_spans()

    def spans_jsonl(self) -> str:
        """The span export as JSON Lines (empty when observability is
        off)."""
        if self.tracer is None:
            return ""
        return self.tracer.to_jsonl()

    @property
    def elapsed(self) -> float:
        """Total simulated seconds spent so far."""
        return self.clock.elapsed


@dataclass
class ExecutionReport:
    """Everything observable about execution so far: cache hit/miss
    totals, executor counters, and the latest batch run (if any)."""

    cache: CacheReport
    stats: ExecutorStatsReport
    last_batch: BatchResult | None


def estimate_parallel_latency(latencies: list[float], workers: int) -> float:
    """Wall-clock estimate when queries run on ``workers`` parallel lanes.

    Greedy longest-first bin packing: the makespan of the fullest lane.
    This is the §V "parallelize our algorithm" model.  Since the
    :class:`~repro.core.batch.BatchExecutor` runs batches on a real
    worker pool and reports measured makespans, this analytical model
    is only a fallback — it predicts, from a serial (``workers=1``)
    run's per-query latencies, what a parallel run would cost.
    """
    if workers <= 0:
        raise ValueError(f"workers must be >= 1, got {workers}")
    lanes = [0.0] * workers
    for latency in sorted(latencies, reverse=True):
        lanes[lanes.index(min(lanes))] += latency
    return max(lanes) if lanes else 0.0
