"""SPOC quadruples and query terms (§II, §IV).

A complex query decomposes into clauses; each clause reduces to a SPOC
— subject, predicate, object, constraint.  Subjects and objects are
:class:`Term` values: a head noun plus the structure ``matchVertex``
needs (is it a "kind of X" phrase? does it have a possessive owner?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class QuestionType(str, Enum):
    """The three MVQA answer types (§V, §VI)."""

    JUDGMENT = "judgment"
    COUNTING = "counting"
    REASONING = "reasoning"


@dataclass(frozen=True)
class Term:
    """A subject/object slot of a SPOC.

    Attributes
    ----------
    text:
        Full surface text of the noun phrase ("kind of clothes").
    head:
        The lemmatized main noun ("clothes"); for possessives, the
        possessed relation noun ("girlfriend").
    kind_of:
        True for "kind/type/sort of X" phrases — the executor resolves
        these through the knowledge graph's ``is a`` hierarchy.
    owner:
        The possessor for possessive phrases ("Harry Potter").
    is_wh:
        True when this slot holds the question word (the answer slot).
    """

    text: str
    head: str
    kind_of: bool = False
    owner: str | None = None
    is_wh: bool = False

    def __str__(self) -> str:
        """The term's surface text."""
        return self.text


@dataclass
class SPOC:
    """One clause's quadruple ``[c_s, c_p, c_o, c_c]`` (§IV-B).

    ``answer_role`` names the slot ("subject"/"object") whose matches
    constitute this clause's output — for the main clause that is the
    final answer, for condition clauses it is what propagates along
    query-graph edges.
    """

    subject: Term | None
    predicate: str
    object: Term | None
    constraint: str | None = None
    clause_index: int = 0
    depth: int = 0
    is_main: bool = False
    question_type: QuestionType | None = None
    answer_role: str = "object"
    source_text: str = ""

    def slot(self, role: str) -> Term | None:
        """The Term in the named slot."""
        if role == "subject":
            return self.subject
        if role == "object":
            return self.object
        raise ValueError(f"unknown slot role: {role!r}")

    def __repr__(self) -> str:
        """Compact ``s=.. p=.. o=..`` rendering for debugging."""
        parts = [
            f"s={self.subject.text if self.subject else '?'}",
            f"p={self.predicate}",
            f"o={self.object.text if self.object else '?'}",
        ]
        if self.constraint:
            parts.append(f"c={self.constraint}")
        return f"SPOC({', '.join(parts)})"


class DependencyKind(str, Enum):
    """The five clause-dependency types of §IV-C.

    An edge ``u --X2Y--> v`` means vertex ``v``'s slot ``X`` is
    replaced by the ``Y``-side matches of ``u``'s answer pairs
    (Algorithm 3, Update Stage).
    """

    S2S = "S2S"
    S2O = "S2O"
    O2S = "O2S"
    O2O = "O2O"
    NULL = "NULL"

    @property
    def consumer_slot(self) -> str:
        """Which slot of the consumer vertex gets replaced."""
        return "subject" if self.value[0] == "S" else "object"

    @property
    def provider_slot(self) -> str:
        """Which side of the provider's answer pairs propagates."""
        return "subject" if self.value[2] == "S" else "object"


@dataclass
class QueryGraph:
    """The ordered query graph ``G_q`` (Definition 3).

    Vertices are SPOCs; directed edges run from *provider* clauses
    (conditions, executed first) to *consumer* clauses, ending at the
    main clause, which yields the final answer.
    """

    vertices: list[SPOC]
    edges: list[tuple[int, int, DependencyKind]] = field(default_factory=list)
    question: str = ""

    @property
    def main_index(self) -> int:
        """Index of the main clause (the one carrying the answer)."""
        for i, spoc in enumerate(self.vertices):
            if spoc.is_main:
                return i
        raise ValueError("query graph has no main clause")

    @property
    def question_type(self) -> QuestionType:
        """The main clause's judgment/counting/reasoning type."""
        qtype = self.vertices[self.main_index].question_type
        if qtype is None:
            raise ValueError("main clause has no question type")
        return qtype

    def start_vertices(self) -> list[int]:
        """Vertices with in-degree 0 — executed first (Algorithm 3)."""
        targets = {dst for _, dst, _ in self.edges}
        return [i for i in range(len(self.vertices)) if i not in targets]

    def out_edges(self, index: int) -> list[tuple[int, DependencyKind]]:
        """Dependency edges leaving clause ``index``."""
        return [(dst, kind) for src, dst, kind in self.edges if src == index]

    def in_degree(self, index: int) -> int:
        """Number of dependency edges entering clause ``index``."""
        return sum(1 for _, dst, _ in self.edges if dst == index)
