"""The SVQA core: data aggregator, query-graph generator, executor,
caches, scheduler, and the end-to-end pipeline facade.
"""

from repro.core.aggregator import (
    AggregatorConfig,
    DataAggregator,
    MergedGraph,
    MergeStats,
)
from repro.core.answer import (
    Answer,
    fallback_answer,
    final_answer,
    render_answer,
)
from repro.core.batch import BatchExecutor, BatchResult
from repro.core.cache import (
    CacheReport,
    EvictingCache,
    KeyCentricCache,
    LFUCache,
    LRUCache,
    make_cache,
)
from repro.core.clauses import Clause, segment_clauses
from repro.core.executor import ExecutorConfig, QueryGraphExecutor, VertexResult
from repro.core.pipeline import (
    ExecutionReport,
    SVQA,
    SVQAConfig,
    estimate_parallel_latency,
)
from repro.core.planner import (
    CalibratedCosts,
    MakespanPrediction,
    PlanForest,
    PlanNode,
    PlanOverlay,
    PlannedBatch,
    PlannerConfig,
    QueryPlan,
    SharedNode,
    build_forest,
    build_plans,
    canonicalize,
    execute_shared,
    plan_order,
    predict_makespan,
    render_forest,
)
from repro.observability.config import ObservabilityConfig
from repro.retrieval.config import RetrievalConfig
from repro.core.stats import ExecutorStats, ExecutorStatsReport
from repro.core.query_graph import (
    describe_query_graph,
    generate_query_graph,
    query_graph_from_tree,
)
from repro.core.scheduler import SchedulePlan, schedule_queries, vertex_key
from repro.core.spoc import DependencyKind, QueryGraph, QuestionType, SPOC, Term
from repro.core.spoc_extract import CONSTRAINT_WORDS, extract_spoc, validate_spoc

__all__ = [
    "AggregatorConfig",
    "Answer",
    "BatchExecutor",
    "BatchResult",
    "CONSTRAINT_WORDS",
    "CacheReport",
    "CalibratedCosts",
    "Clause",
    "DataAggregator",
    "DependencyKind",
    "EvictingCache",
    "ExecutionReport",
    "ExecutorConfig",
    "ExecutorStats",
    "ExecutorStatsReport",
    "KeyCentricCache",
    "LFUCache",
    "LRUCache",
    "MakespanPrediction",
    "MergeStats",
    "MergedGraph",
    "ObservabilityConfig",
    "PlanForest",
    "PlanNode",
    "PlanOverlay",
    "PlannedBatch",
    "PlannerConfig",
    "QueryGraph",
    "QueryGraphExecutor",
    "QueryPlan",
    "QuestionType",
    "RetrievalConfig",
    "SPOC",
    "SVQA",
    "SVQAConfig",
    "SchedulePlan",
    "SharedNode",
    "Term",
    "VertexResult",
    "build_forest",
    "build_plans",
    "canonicalize",
    "describe_query_graph",
    "estimate_parallel_latency",
    "execute_shared",
    "extract_spoc",
    "fallback_answer",
    "final_answer",
    "generate_query_graph",
    "make_cache",
    "plan_order",
    "predict_makespan",
    "query_graph_from_tree",
    "render_answer",
    "render_forest",
    "schedule_queries",
    "segment_clauses",
    "validate_spoc",
    "vertex_key",
]
