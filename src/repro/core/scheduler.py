"""Optimized multi-query scheduling (§V-B).

Before executing N query graphs, every vertex's SPOC is normalized to a
reuse key; a frequency table over all N graphs assigns each key a
frequency ratio, each graph scores the sum of its vertices' ratios, and
the graphs run in descending score order.  Graphs whose vertices are
shared by many other graphs therefore run first, populating the
key-centric cache while their entries are still hot — which is what
makes the cache effective under a bounded pool (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spoc import QueryGraph, SPOC


def vertex_key(spoc: SPOC) -> tuple[str, str, str, str]:
    """A SPOC's reuse key: normalized (subject, predicate, object,
    constraint)."""
    return (
        spoc.subject.head.lower() if spoc.subject else "",
        spoc.predicate.lower(),
        spoc.object.head.lower() if spoc.object else "",
        (spoc.constraint or "").lower(),
    )


@dataclass
class SchedulePlan:
    """The pre-analysis result: execution order + key frequencies."""

    order: list[int]                    # indices into the input list
    key_frequency: dict[tuple, int]
    graph_scores: list[float]

    def scheduled(self, graphs: list[QueryGraph]) -> list[QueryGraph]:
        """The input graphs in scheduled order."""
        return [graphs[i] for i in self.order]


def schedule_queries(graphs: list[QueryGraph]) -> SchedulePlan:
    """Compute the descending frequency-ratio order of §V-B.

    >>> plan = schedule_queries([])
    >>> plan.order
    []
    """
    frequency: dict[tuple, int] = {}
    for graph in graphs:
        for spoc in graph.vertices:
            key = vertex_key(spoc)
            frequency[key] = frequency.get(key, 0) + 1

    total = sum(frequency.values()) or 1
    scores = []
    for graph in graphs:
        score = sum(
            frequency[vertex_key(spoc)] / total for spoc in graph.vertices
        )
        scores.append(score)

    # descending score; more vertices win ties (the paper's Example 6:
    # G1 is processed first because it "contains the most frequent
    # vertices and contains more vertices than G2").  The final `i`
    # tiebreaker makes the order fully deterministic — it doubles as
    # the submission order of the concurrent BatchExecutor, so equal-
    # score graphs must not reorder between runs
    order = sorted(
        range(len(graphs)),
        key=lambda i: (-scores[i], -len(graphs[i].vertices), i),
    )
    return SchedulePlan(order=order, key_frequency=frequency,
                        graph_scores=scores)
