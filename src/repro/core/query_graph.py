"""Query-graph generation: Algorithm 2 of the paper.

``generate_query_graph`` runs the full pipeline:

* **Initial stage** — POS-tag and dependency-parse the question (the
  Stanford tagger/parser substitutes live in :mod:`repro.nlp`);
* **Parse stage** — segment clauses, extract a SPOC per clause;
* **Connect stage** — compare the SPOCs' subject/object terms and wire
  S2S / S2O / O2S / O2O dependency edges (§IV-C).  Edges run from
  *provider* clauses (deeper conditions, executed first) to *consumer*
  clauses, so the main clause is the sink and start vertices are the
  in-degree-0 conditions, matching Algorithm 3's traversal.
"""

from __future__ import annotations

from repro.errors import ParseError, QueryParseError
from repro.nlp.depparse import DependencyTree, parse
from repro.nlp.semlex import are_synonyms
from repro.observability.spans import Tracer, maybe_span
from repro.simtime import SimClock
from repro.core.clauses import segment_clauses
from repro.core.spoc import DependencyKind, QueryGraph, SPOC, Term
from repro.core.spoc_extract import extract_spoc, validate_spoc


def generate_query_graph(
    question: str, clock: SimClock | None = None,
    tracer: Tracer | None = None,
) -> QueryGraph:
    """Decompose a complex question into an ordered query graph.

    Raises :class:`~repro.errors.QueryParseError` when the question is
    outside the grammar (e.g. contains an unknown foreign word — the
    Fig. 8(a) failure mode).  With a tracer and an active trace, the
    run is recorded as a ``query_graph`` span wrapping ``parse`` and
    per-clause ``spoc`` spans.
    """
    with maybe_span(tracer, "query_graph", question=question) as root:
        if clock is not None:
            clock.charge("pos_tag")
            clock.charge("dep_parse")
        with maybe_span(tracer, "parse"):
            try:
                tree = parse(question)
            except ParseError as exc:
                # forward the offending term so Fig. 8(a)-style failures
                # stay attributable through the wrapping
                raise QueryParseError(
                    f"cannot parse question: {exc}", term=exc.term
                ) from exc
        graph = query_graph_from_tree(tree, question, clock, tracer)
        if root is not None:
            root.set("clauses", len(graph.vertices))
            root.set("edges", len(graph.edges))
        return graph


def query_graph_from_tree(
    tree: DependencyTree, question: str = "",
    clock: SimClock | None = None,
    tracer: Tracer | None = None,
) -> QueryGraph:
    """Algorithm 2's Parse + Connect stages on an existing parse tree."""
    if clock is not None:
        clock.charge("clause_segment")
    clauses = segment_clauses(tree)
    spocs: list[SPOC] = []
    for index, clause in enumerate(clauses):
        with maybe_span(tracer, "spoc", clause=index):
            if clock is not None:
                clock.charge("spoc_extract")
            spoc = extract_spoc(tree, clause, index)
            validate_spoc(spoc)
            spocs.append(spoc)

    edges = _connect(spocs)
    return QueryGraph(vertices=spocs, edges=edges, question=question)


def _connect(spocs: list[SPOC]) -> list[tuple[int, int, DependencyKind]]:
    """The Connect stage: SO-overlap comparison between all vertex pairs.

    For every (provider, consumer) pair where the provider is deeper,
    the first matching slot combination becomes the edge.
    """
    edges: list[tuple[int, int, DependencyKind]] = []
    consumers_bound: set[tuple[int, str]] = set()
    # deeper clauses provide to shallower ones; resolve ties by clause
    # order (later clauses provide to earlier ones)
    ordered = sorted(range(len(spocs)), key=lambda i: -spocs[i].depth)
    for provider_index in ordered:
        provider = spocs[provider_index]
        best: tuple[int, DependencyKind] | None = None
        for consumer_index, consumer in enumerate(spocs):
            if consumer_index == provider_index:
                continue
            if consumer.depth >= provider.depth:
                continue
            for consumer_slot in ("subject", "object"):
                if (consumer_index, consumer_slot) in consumers_bound:
                    continue
                for provider_slot in ("subject", "object"):
                    if _terms_overlap(consumer.slot(consumer_slot),
                                      provider.slot(provider_slot)):
                        kind = DependencyKind(
                            f"{consumer_slot[0].upper()}2"
                            f"{provider_slot[0].upper()}"
                        )
                        best = (consumer_index, kind)
                        break
                if best:
                    break
            if best:
                break
        if best is not None:
            consumer_index, kind = best
            edges.append((provider_index, consumer_index, kind))
            consumers_bound.add((consumer_index, kind.consumer_slot))
    return edges


def _terms_overlap(consumer: Term | None, provider: Term | None) -> bool:
    """The SOOverlap check of Algorithm 2: same-semantics term heads."""
    if consumer is None or provider is None:
        return False
    if consumer.head.lower() == provider.head.lower():
        return True
    return are_synonyms(consumer.head, provider.head)


def describe_query_graph(graph: QueryGraph) -> str:
    """Human-readable rendering of a query graph (examples, debugging)."""
    lines = [f"Q: {graph.question}"] if graph.question else []
    for i, spoc in enumerate(graph.vertices):
        marker = "*" if spoc.is_main else " "
        lines.append(f"{marker}v{i}: {spoc!r}")
    for src, dst, kind in graph.edges:
        lines.append(f" v{src} --{kind.value}--> v{dst}")
    return "\n".join(lines)
