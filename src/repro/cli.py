"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``ask``        answer one question over the movie scenario (Figure 1)
``mvqa``       build MVQA and evaluate SVQA on it (Exp-1 / Table III)
``stats``      print the MVQA dataset statistics (Tables I & II)
``parse``      show the query graph for a question (Algorithm 2)
"""

from __future__ import annotations

import argparse
import sys

from repro.core import SVQA, SVQAConfig, describe_query_graph, \
    generate_query_graph
from repro.errors import QueryError


def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.dataset.kg import build_movie_kg
    from repro.dataset.movie import build_movie_scenes
    from repro.vision.detector import DetectorConfig

    movie = build_movie_scenes()
    config = SVQAConfig(detector=DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0))
    svqa = SVQA(movie.scenes, build_movie_kg(), config,
                annotations=movie.annotations)
    svqa.build()
    question = args.question or movie.flagship_question
    try:
        answer = svqa.answer(question)
    except QueryError as exc:
        print(f"cannot answer: {exc}", file=sys.stderr)
        return 1
    print(f"Q: {question}")
    print(f"A: {answer.value}")
    if answer.supporting_images:
        print(f"   evidence images: {answer.supporting_images}")
    return 0


def _cmd_mvqa(args: argparse.Namespace) -> int:
    from repro.dataset.mvqa import build_mvqa
    from repro.eval.harness import evaluate, format_table, percentage

    if args.fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    svqa = SVQA(dataset.scenes, dataset.kg)
    svqa.build()
    result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                      lambda: svqa.elapsed)
    row = result.summary()
    print(format_table(
        ["Method", "Latency(Sec.)", "Judgment", "Counting", "Reasoning"],
        [["SVQA", f"{row['latency']:.2f}", percentage(row["judgment"]),
          percentage(row["counting"]), percentage(row["reasoning"])]],
    ))
    print(f"overall: {percentage(row['overall'])}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.dataset.mvqa import build_mvqa
    from repro.dataset.stats import (
        average_clause_count,
        mvqa_row,
        table2_breakdown,
        total_unique_spos,
    )
    from repro.eval.harness import format_table

    if args.fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    ours = mvqa_row(dataset)
    print(f"MVQA: {ours.images} images, "
          f"avg query length {ours.avg_query_length:.1f} tokens, "
          f"{total_unique_spos(dataset)} unique SPOs, "
          f"{average_clause_count(dataset):.2f} clauses/question")
    rows = table2_breakdown(dataset)
    print(format_table(
        ["Type", "Questions", "Clauses", "SPOs", "Avg. Images"],
        [[r.question_type.value, str(r.questions), str(r.clauses),
          str(r.unique_spos), str(r.avg_images)] for r in rows],
    ))
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    try:
        graph = generate_query_graph(args.question)
    except QueryError as exc:
        print(f"parse failed: {exc}", file=sys.stderr)
        return 1
    print(describe_query_graph(graph))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SVQA reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ask = commands.add_parser("ask", help="answer a question over the "
                                          "movie scenario")
    ask.add_argument("question", nargs="?", default=None)
    ask.set_defaults(handler=_cmd_ask)

    mvqa = commands.add_parser("mvqa", help="evaluate SVQA on MVQA")
    mvqa.add_argument("--fast", action="store_true")
    mvqa.set_defaults(handler=_cmd_mvqa)

    stats = commands.add_parser("stats", help="MVQA dataset statistics")
    stats.add_argument("--fast", action="store_true")
    stats.set_defaults(handler=_cmd_stats)

    parse_cmd = commands.add_parser("parse", help="show a question's "
                                                  "query graph")
    parse_cmd.add_argument("question")
    parse_cmd.set_defaults(handler=_cmd_parse)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
