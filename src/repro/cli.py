"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``ask``           answer one question over the movie scenario (Figure 1)
``serve``         long-lived QA server: POST /ask, /healthz, /metrics
``mvqa``          build MVQA and evaluate SVQA on it (Exp-1 / Table III)
``bench``         concurrent batch benchmark + executor statistics
``plan``          print the shared-sub-plan forest for an MVQA batch
``profile``       MVQA suite with tracing: per-stage sim-time breakdown
``trace``         answer one question and print its span tree
``chaos``         fault-injection sweep: accuracy decay vs fault rate
``stats``         print the MVQA dataset statistics (Tables I & II)
``retrieval``     inspect the ANN + BM25 retrieval tier indexes
``parse``         show the query graph for a question (Algorithm 2)
``lint-queries``  semantic-validate query graphs (MVQA sweep or ad hoc)
``lint-code``     run the repo-invariant linter over the source tree
"""

from __future__ import annotations

import argparse
import sys

from repro.core import PlannerConfig, SVQA, SVQAConfig, \
    describe_query_graph, generate_query_graph, render_answer
from repro.errors import QueryError


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}"
        )
    return value


def _non_negative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, got {value}"
        )
    return value


def _unit_rate(text: str) -> float:
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a rate in [0, 1], got {value}"
        )
    return value


def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.dataset.kg import build_movie_kg
    from repro.dataset.movie import build_movie_scenes
    from repro.vision.detector import DetectorConfig

    movie = build_movie_scenes()
    config = SVQAConfig(detector=DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0))
    svqa = SVQA(movie.scenes, build_movie_kg(), config,
                annotations=movie.annotations)
    svqa.build()
    question = args.question or movie.flagship_question
    try:
        answer = svqa.answer(question)
    except QueryError as exc:
        print(f"cannot answer: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # the same stable Answer.to_dict() shape the serving layer's
        # POST /ask emits — one wire contract across all surfaces
        print(answer.to_json())
    else:
        print(render_answer(answer, question))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Build the pipeline once, then serve /ask, /healthz, /metrics."""
    from repro.serve import ServeConfig, build_service, make_qa_server

    config = ServeConfig(
        scenario=args.scenario,
        seed=args.seed,
        workers=args.workers,
        max_batch=args.max_batch,
        batch_wait=args.batch_wait,
        rate=args.rate,
        burst=args.burst,
        max_queue=args.max_queue,
        soft_queue=args.soft_queue,
        default_deadline_ms=args.deadline_ms,
        chaos=args.chaos,
        snapshot=args.snapshot,
    )
    service = build_service(config)
    server = make_qa_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    start = "cold build"
    if service.store_report is not None:
        rep = service.store_report
        start = (f"warm start from snapshot (epoch={rep.epoch}, "
                 f"wal_records_replayed={rep.wal_records_replayed})"
                 if rep.source == "snapshot"
                 else "snapshot unrecoverable; cold rebuild")
    print(f"serving {args.scenario} scenario on http://{host}:{port} "
          f"(workers={args.workers}, max_batch={args.max_batch}, "
          f"{start})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Build a scenario's merged graph and write its durable snapshot.

    The pipeline is constructed exactly as ``repro serve`` would build
    it, so ``repro serve --snapshot`` warm-started from this directory
    answers byte-identically to a cold-built server at the same seed.
    """
    from repro.graph.durable import DurableStore
    from repro.serve import ServeConfig, build_svqa

    config = ServeConfig(scenario=args.scenario, seed=args.seed,
                         workers=args.workers)
    svqa = build_svqa(config)
    assert svqa.merged is not None
    store = DurableStore(args.out, clock=svqa.clock)
    manifest = store.snapshot(svqa.merged.graph,
                              merged_meta=svqa.merged.meta_dict())
    store.close()
    print(f"snapshot written to {args.out}: "
          f"epoch={manifest['epoch']} "
          f"vertices={manifest['vertices']} "
          f"edges={manifest['edges']} "
          f"records={manifest['records']} "
          f"digest={manifest['payload_digest']}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable store directory and print the verdict.

    Exit 0 when a snapshot-sourced graph was recovered, 1 when the
    store degraded to a full-rebuild verdict (damage is quarantined
    and attributed either way, never silently dropped).
    """
    from repro.graph.durable import DurableStore

    store = DurableStore(args.store)
    result = store.recover()
    store.close()
    print(result.report.render())
    return 0 if result.report.source == "snapshot" else 1


def _cmd_store_torture(args: argparse.Namespace) -> int:
    """Run the crash-torture sweep against a scripted store history."""
    import json
    import tempfile

    from repro.graph.torture import run_torture

    with tempfile.TemporaryDirectory() as scratch:
        report = run_torture(args.seed, scratch)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.passed else 1


def _build_mvqa_svqa(args: argparse.Namespace) -> tuple[object, SVQA]:
    from repro.dataset.mvqa import build_mvqa

    if args.fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    workers = getattr(args, "workers", 1)
    resilience = None
    chaos_rate = getattr(args, "chaos", None)
    if chaos_rate is not None:
        from repro.resilience import ResilienceConfig

        resilience = ResilienceConfig.chaos(
            chaos_rate, seed=getattr(args, "seed", 0))
    planner = PlannerConfig() if getattr(args, "planner", False) else None
    retrieval = None
    if getattr(args, "retrieval", False):
        from repro.core import RetrievalConfig

        retrieval = RetrievalConfig()
    svqa = SVQA(dataset.scenes, dataset.kg,
                SVQAConfig(workers=workers, resilience=resilience,
                           planner=planner, retrieval=retrieval))
    svqa.build()
    return dataset, svqa


def _cmd_mvqa(args: argparse.Namespace) -> int:
    from repro.eval.harness import evaluate, format_table, percentage

    dataset, svqa = _build_mvqa_svqa(args)
    result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                      lambda: svqa.elapsed)
    row = result.summary()
    print(format_table(
        ["Method", "Latency(Sec.)", "Judgment", "Counting", "Reasoning"],
        [["SVQA", f"{row['latency']:.2f}", percentage(row["judgment"]),
          percentage(row["counting"]), percentage(row["reasoning"])]],
    ))
    print(f"overall: {percentage(row['overall'])}")
    return 0


def _load_baseline(path: str) -> dict | None:
    """Read a recorded ``BENCH_baseline.json``; ``None`` if absent."""
    import json
    import os

    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return payload if isinstance(payload, dict) else None


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core import estimate_parallel_latency
    from repro.eval.harness import format_table, percentage

    dataset, svqa = _build_mvqa_svqa(args)
    svqa.answer_many([q.text for q in dataset.questions],
                     workers=args.workers)
    batch = svqa.last_batch
    # the measured makespan (busiest real worker lane) is the headline
    # figure; the retired bin-packing model is printed separately below,
    # clearly labeled as an estimate, never in the measured table
    print(format_table(
        ["Workers", "Makespan (s)", "Sim total (s)",
         "Speedup", "Wall (s)"],
        [[str(batch.workers), f"{batch.simulated_makespan:.2f}",
          f"{batch.simulated_total:.2f}",
          f"{batch.speedup:.2f}x", f"{batch.wall_clock:.3f}"]],
        title="Concurrent batch execution "
              f"({len(dataset.questions)} questions)",
    ))
    estimate = estimate_parallel_latency(batch.latencies, args.workers)
    print(f"Analytical estimate (bin-packing fallback model): "
          f"{estimate:.2f} s")
    report = svqa.execution_report()
    stats = report.stats
    rows = [
        ["queries executed", str(stats.queries)],
        ["vertices / query",
         f"{stats.mean_vertices_per_query:.2f}"],
        ["scope hit rate", percentage(stats.scope_hit_rate)],
        ["path hit rate", percentage(stats.path_hit_rate)],
        ["predicate rejections", str(stats.predicate_rejections)],
        ["predicate dropouts", str(stats.predicate_dropouts)],
        ["constraint applications",
         str(stats.constraint_applications)],
        ["graphs validated", str(stats.graphs_validated)],
        ["validation warnings", str(stats.validation_warnings)],
        ["validation errors", str(stats.validation_errors)],
        ["stale scope drops", str(stats.stale_scope_drops)],
    ]
    if svqa.last_plan is not None:
        rows += [
            ["plan batches", str(stats.plan_batches)],
            ["plan nodes", str(stats.plan_nodes)],
            ["plan shared nodes", str(stats.plan_shared_nodes)],
            ["plan overlay fills", str(stats.plan_overlay_fills)],
        ]
    if getattr(args, "retrieval", False):
        rows += [
            ["ann fresh scores", str(stats.retrieval_ann_fresh)],
            ["ann memo probes", str(stats.retrieval_ann_probes)],
            ["retrieval fallbacks", str(stats.retrieval_fallbacks)],
        ]
    if svqa.resilience is not None:
        rows += [
            ["faults injected", str(stats.faults_injected)],
            ["retry attempts", str(stats.retry_attempts)],
            ["retry recoveries", str(stats.retry_recoveries)],
            ["retries exhausted", str(stats.retries_exhausted)],
            ["breaker trips", str(stats.breaker_trips)],
            ["breaker short-circuits",
             str(stats.breaker_short_circuits)],
            ["deadline cutoffs", str(stats.deadline_cutoffs)],
            ["degraded answers", str(stats.degraded_answers)],
        ]
    print()
    print(format_table(["Metric", "Value"], rows,
                       title="Executor statistics"))
    if svqa.last_plan is not None:
        baseline = _load_baseline(args.baseline)
        if baseline is not None:
            from repro.core import CalibratedCosts, predict_makespan

            plan = svqa.last_plan
            calibration = CalibratedCosts.from_baseline(
                baseline, svqa.clock.costs)
            prediction = predict_makespan(
                plan.forest, plan.positions, args.workers, calibration)
            measured = batch.simulated_makespan
            error = (abs(prediction.makespan - measured) / measured
                     if measured else 0.0)
            print()
            print(format_table(
                ["Makespan", "Seconds"],
                [["predicted (plan-aware)",
                  f"{prediction.makespan:.3f}"],
                 ["measured", f"{measured:.3f}"],
                 ["relative error", f"{error:.1%}"],
                 ["share phase (predicted)",
                  f"{prediction.share_cost:.3f}"]],
                title="Predicted vs measured makespan "
                      f"(calibrated from {args.baseline})",
            ))
        else:
            print(f"\n(no baseline at {args.baseline}; skipping the "
                  "predicted-vs-measured makespan table)")
    if args.explain:
        from repro.observability import explain_lines

        print()
        print("Metric definitions (repro bench --explain):")
        for line in explain_lines():
            print(line)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """Print the shared-sub-plan forest for a batch, plus the plan-aware
    makespan prediction against the measured makespan."""
    from repro.core import CalibratedCosts, predict_makespan, \
        render_forest
    from repro.eval.harness import format_table

    dataset, svqa = _build_mvqa_svqa(args)
    svqa.answer_many([q.text for q in dataset.questions],
                     workers=args.workers)
    plan = svqa.last_plan
    batch = svqa.last_batch
    assert plan is not None and batch is not None
    print(render_forest(plan.forest, limit=args.top))
    print(f"  share phase: {plan.share.shared_scopes} scopes + "
          f"{plan.share.shared_neighborhoods} neighborhoods computed "
          f"once, {plan.share.charged_seconds:.3f} s charged")
    print()
    baseline = _load_baseline(args.baseline)
    if baseline is None:
        print(f"(no baseline at {args.baseline}; skipping the "
              "predicted-vs-measured makespan table)")
        return 0
    calibration = CalibratedCosts.from_baseline(baseline,
                                                svqa.clock.costs)
    prediction = predict_makespan(plan.forest, plan.positions,
                                  args.workers, calibration)
    measured = batch.simulated_makespan
    error = (abs(prediction.makespan - measured) / measured
             if measured else 0.0)
    print(format_table(
        ["Makespan", "Seconds"],
        [["predicted (plan-aware)", f"{prediction.makespan:.3f}"],
         ["measured", f"{measured:.3f}"],
         ["relative error", f"{error:.1%}"]],
        title=f"Predicted vs measured makespan "
              f"(workers={args.workers})",
    ))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the MVQA suite with tracing on and report per-stage cost.

    All figures are simulated seconds from the span tracer, so two
    runs with the same seed produce byte-identical artifacts — the CI
    observability job diffs the ``--snapshot`` JSON across two runs.
    """
    import json

    from repro.core import ObservabilityConfig
    from repro.dataset.mvqa import build_mvqa
    from repro.eval.harness import evaluate, format_table, percentage
    from repro.observability import (
        build_baseline,
        charge_ceiling_violations,
        dump_deterministic_json,
        stage_breakdown,
    )

    if args.fast:
        dataset = build_mvqa(seed=args.seed, pool_size=1_200,
                             image_count=400)
    else:
        dataset = build_mvqa(seed=args.seed)
    retrieval = None
    if args.retrieval:
        from repro.core import RetrievalConfig

        retrieval = RetrievalConfig()
    config = SVQAConfig(workers=args.workers,
                        observability=ObservabilityConfig(),
                        planner=PlannerConfig() if args.planner
                        else None,
                        retrieval=retrieval)
    svqa = SVQA(dataset.scenes, dataset.kg, config)
    svqa.build()
    result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                      lambda: svqa.elapsed)
    summary = result.summary()
    batch = svqa.last_batch

    spans = svqa.finished_spans()
    stages = stage_breakdown(spans)
    print(format_table(
        ["Stage", "Count", "Total (s)", "Self (s)", "Mean (ms)"],
        [[row.name, str(row.count), f"{row.total:.3f}",
          f"{row.self_time:.3f}", f"{row.mean * 1000:.3f}"]
         for row in stages],
        title=f"Per-stage simulated-time breakdown "
              f"({len(dataset.questions)} questions, "
              f"workers={args.workers}, seed={args.seed})",
    ))
    print(f"overall accuracy: {percentage(summary['overall'])}  "
          f"simulated latency: {summary['latency']:.2f} s  "
          f"makespan: {batch.simulated_makespan:.2f} s")

    snapshot = svqa.metrics_snapshot()
    clock_counts = {k: int(v) for k, v in
                    sorted(svqa.clock.counts.items())}
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as fh:
            fh.write(dump_deterministic_json(snapshot))
        print(f"metric snapshot written to {args.snapshot}")
    if args.spans:
        with open(args.spans, "w", encoding="utf-8") as fh:
            fh.write(svqa.spans_jsonl())
        print(f"span export written to {args.spans}")
    if args.baseline:
        baseline = build_baseline(
            suite="mvqa-fast" if args.fast else "mvqa",
            config={
                "seed": args.seed,
                "workers": args.workers,
                "pool_size": 1_200 if args.fast else dataset.pool_size,
                "image_count": len(dataset.scenes),
                "questions": len(dataset.questions),
            },
            accuracy={
                "overall": summary["overall"],
                "judgment": summary["judgment"],
                "counting": summary["counting"],
                "reasoning": summary["reasoning"],
            },
            latency={
                "simulated_total": svqa.elapsed,
                "batch_simulated_total": batch.simulated_total,
                "batch_makespan": batch.simulated_makespan,
                "evaluate_latency": summary["latency"],
            },
            stages=stages,
            metrics=snapshot,
            clock_counts=clock_counts,
        )
        with open(args.baseline, "w", encoding="utf-8") as fh:
            fh.write(dump_deterministic_json(baseline))
        print(f"baseline written to {args.baseline}")
    if args.check_ceiling:
        with open(args.check_ceiling, encoding="utf-8") as fh:
            recorded = json.load(fh)
        violations = charge_ceiling_violations(recorded, clock_counts)
        if violations:
            for violation in violations:
                print(f"CHARGE REGRESSION: {violation}",
                      file=sys.stderr)
            return 1
        ceilings = recorded.get("clock_counts", {})
        for operation in ("vertex_match", "edge_scan", "embed_score"):
            print(f"{operation} charges within baseline ceiling "
                  f"({clock_counts.get(operation, 0)} <= "
                  f"{ceilings.get(operation)})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Answer one movie-scenario question and print its span tree."""
    from repro.core import ObservabilityConfig
    from repro.dataset.kg import build_movie_kg
    from repro.dataset.movie import build_movie_scenes
    from repro.observability import render_trace
    from repro.vision.detector import DetectorConfig

    movie = build_movie_scenes()
    config = SVQAConfig(detector=DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0),
                        observability=ObservabilityConfig())
    svqa = SVQA(movie.scenes, build_movie_kg(), config,
                annotations=movie.annotations)
    svqa.build()
    question = args.question or movie.flagship_question
    try:
        answer = svqa.answer(question)
    except QueryError as exc:
        print(f"cannot answer: {exc}", file=sys.stderr)
        return 1
    print(render_answer(answer, question))
    print()
    spans = svqa.finished_spans()
    if args.build:
        print(render_trace(spans, "build"))
        print()
    print(render_trace(spans, "q0000"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep fault rates over MVQA: accuracy must decay gracefully.

    Every question gets an answer at every rate — degraded ones carry
    their fault provenance; an unhandled exception fails the command.
    All figures are deterministic (simulated time, seeded faults), so
    two runs with the same seed print byte-identical reports.
    """
    from repro.dataset.mvqa import build_mvqa
    from repro.eval.harness import evaluate, format_table, percentage
    from repro.resilience import ResilienceConfig

    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"invalid --rates: {args.rates!r}", file=sys.stderr)
        return 2
    if not rates or any(not 0.0 <= r <= 1.0 for r in rates):
        print("--rates must be a comma list of values in [0, 1]",
              file=sys.stderr)
        return 2

    if args.fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    questions = dataset.questions

    rows = []
    unattributed = 0
    dump_lines: list[str] = []
    for rate in rates:
        resilience = ResilienceConfig.chaos(
            rate, seed=args.seed, query_deadline=args.deadline
        )
        svqa = SVQA(dataset.scenes, dataset.kg,
                    SVQAConfig(workers=args.workers,
                               resilience=resilience))
        svqa.build()
        result = evaluate("SVQA", questions, svqa.answer_many,
                          lambda svqa=svqa: svqa.elapsed)
        stats = svqa.execution_report().stats
        degraded = [a for a in result.answers if a.degraded]
        unattributed += sum(1 for a in degraded if not a.fault_events)
        if args.dump:
            import json

            # one JSON line per (rate, question): the payload is the
            # same stable Answer.to_dict() shape POST /ask returns
            dump_lines.extend(
                json.dumps(
                    {"rate": rate, "question": question.text,
                     "payload": answer.to_dict()},
                    sort_keys=True, separators=(",", ":"),
                )
                for question, answer in
                zip(questions, result.answers, strict=True)
            )
        summary = result.summary()
        rows.append([
            f"{rate:.2f}", percentage(summary["overall"]),
            str(len(degraded)), str(stats.faults_injected),
            str(stats.retry_attempts), str(stats.retry_recoveries),
            str(stats.retries_exhausted), str(stats.breaker_trips),
            str(stats.deadline_cutoffs),
            str(len(svqa.merged.skipped_images)),
        ])

    print(format_table(
        ["Rate", "Overall", "Degraded", "Faults", "Retries",
         "Recovered", "Exhausted", "Trips", "Deadline", "Skipped img"],
        rows,
        title=f"Chaos sweep over {len(questions)} MVQA questions "
              f"(seed={args.seed})",
    ))
    # ----- durability leg: the same fault rates against the durable
    # store's guards (store.snapshot / store.wal_append / store.recover)
    import random
    import tempfile

    from repro.dataset.kg import build_movie_kg
    from repro.errors import FaultToleranceError
    from repro.graph.durable import DurableStore
    from repro.graph.torture import scripted_mutations
    from repro.resilience import ResilienceManager
    from repro.simtime import SimClock

    store_rows = []
    for rate in rates:
        manager = ResilienceManager(
            ResilienceConfig.chaos(rate, seed=args.seed))
        with tempfile.TemporaryDirectory() as scratch:
            graph = build_movie_kg()
            store = DurableStore(scratch, resilience=manager,
                                 clock=SimClock())
            try:
                store.snapshot(graph)
                snapshot_state = "ok"
            except FaultToleranceError:
                snapshot_state = "failed"
            store.attach(graph)
            base_epoch = graph.epoch
            scripted_mutations(graph, random.Random(args.seed))
            wal_state = "ok" if store.wal_healthy else "degraded"
            store.close()
            result = DurableStore(scratch, resilience=manager,
                                  clock=SimClock()).recover()
        rep = result.report
        store_rows.append([
            f"{rate:.2f}", snapshot_state,
            str(graph.epoch - base_epoch), wal_state,
            rep.source, str(rep.epoch),
            str(rep.wal_records_replayed),
            str(len(rep.quarantined)),
        ])
    print()
    print(format_table(
        ["Rate", "Snapshot", "Ops", "WAL", "Recovered", "Epoch",
         "Replayed", "Quarantined"],
        store_rows,
        title=f"Durable-store chaos sweep (seed={args.seed}; sites "
              "store.snapshot/store.wal_append/store.recover)",
    ))

    if args.dump:
        with open(args.dump, "w", encoding="utf-8") as fh:
            fh.write("\n".join(dump_lines) + "\n")
        print(f"answer dump written to {args.dump} "
              f"({len(dump_lines)} records)")
    if unattributed:
        print(f"ERROR: {unattributed} degraded answer(s) carry no "
              "fault provenance", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.dataset.mvqa import build_mvqa
    from repro.dataset.stats import (
        average_clause_count,
        mvqa_row,
        table2_breakdown,
        total_unique_spos,
    )
    from repro.eval.harness import format_table

    if args.fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    ours = mvqa_row(dataset)
    print(f"MVQA: {ours.images} images, "
          f"avg query length {ours.avg_query_length:.1f} tokens, "
          f"{total_unique_spos(dataset)} unique SPOs, "
          f"{average_clause_count(dataset):.2f} clauses/question")
    rows = table2_breakdown(dataset)
    print(format_table(
        ["Type", "Questions", "Clauses", "SPOs", "Avg. Images"],
        [[r.question_type.value, str(r.questions), str(r.clauses),
          str(r.unique_spos), str(r.avg_images)] for r in rows],
    ))
    return 0


def _cmd_retrieval(args: argparse.Namespace) -> int:
    """Inspect the retrieval tier's indexes over the merged graph.

    Prints the ANN index and BM25 lexical-index statistics; with
    ``--query`` also the ANN neighborhood of a phrase over the indexed
    edge labels, and with ``--question`` a dry run of the ranked
    degraded-parse fallback (the query graph it would build and the
    confidence it would carry).
    """
    from repro.core import RetrievalConfig
    from repro.eval.harness import format_table
    from repro.resilience.degrade import retrieval_query_graph

    args.retrieval = True
    _, svqa = _build_mvqa_svqa(args)
    assert svqa.merged is not None
    graph = svqa.merged.graph
    ann = graph.ann_index.stats()
    lexical = graph.lexical_index.stats()
    print(format_table(
        ["Index", "Stat", "Value"],
        [["ann", key, str(value)]
         for key, value in sorted(ann.items())] +
        [["bm25", key, str(value)]
         for key, value in sorted(lexical.items())],
        title="Retrieval-tier indexes (merged graph)",
    ))
    if args.query:
        neighbors = graph.ann_index.neighbors(args.query,
                                              limit=args.top)
        print()
        if neighbors:
            print(format_table(
                ["Edge label", "Score"],
                [[label, f"{score:.4f}"]
                 for label, score in neighbors],
                title=f"ANN neighbors of {args.query!r}",
            ))
        else:
            print(f"no ANN neighbors for {args.query!r} "
                  "(no bucket collision)")
    if args.question:
        ranked = retrieval_query_graph(args.question, graph,
                                       RetrievalConfig())
        print()
        if ranked is None:
            print(f"retrieval fallback found no anchors for "
                  f"{args.question!r} (keyword rung would run next)")
        else:
            fallback_graph, confidence = ranked
            print(f"retrieval fallback (confidence={confidence:.3f}):")
            print(describe_query_graph(fallback_graph))
    return 0


def _cmd_lint_queries(args: argparse.Namespace) -> int:
    from repro.analysis import Severity, validate_query_graph
    from repro.analysis.diagnostics import (
        Diagnostic,
        DiagnosticReport,
        Location,
    )
    from repro.errors import QueryParseError

    if args.question:
        questions = list(args.question)
    else:
        from repro.dataset.mvqa import build_mvqa

        if args.fast:
            dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
        else:
            dataset = build_mvqa()
        questions = [q.text for q in dataset.questions]

    combined = DiagnosticReport()
    errors = warnings = parse_failures = clean = 0
    for question in questions:
        try:
            graph = generate_query_graph(question)
        except QueryParseError as exc:
            # expected Fig. 8(a)/Fig. 9 behaviour: out-of-grammar
            # questions are rejected at parse time, attributably
            parse_failures += 1
            combined.add(Diagnostic(
                "QG000", Severity.INFO,
                Location(vertex=exc.clause_index),
                f"parse rejected: {question} ({exc})",
            ))
            if args.json:
                continue
            where = ""
            if exc.clause_index is not None:
                where += f" clause {exc.clause_index}"
            if exc.term is not None:
                where += f" term {exc.term!r}"
            print(f"PARSE-REJECTED{where}: {question}")
            print(f"  {exc}")
            continue
        report = validate_query_graph(graph)
        combined.extend(report)
        errors += report.count(Severity.ERROR)
        warnings += report.count(Severity.WARNING)
        if len(report) == 0:
            clean += 1
            continue
        if args.json:
            continue
        print(f"Q: {question}")
        for diagnostic in report:
            print(f"  {diagnostic.render()}")
    if args.json:
        print(combined.to_json())
    else:
        print(
            f"{len(questions)} question(s): {clean} clean, "
            f"{warnings} warning(s), {errors} error(s), "
            f"{parse_failures} parse rejection(s)"
        )
    if errors:
        return 1
    return 1 if parse_failures and args.strict_parse else 0


def _cmd_lint_code(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import default_source_root, lint_paths

    roots = [Path(p) for p in args.paths] if args.paths \
        else [default_source_root()]
    report = lint_paths(roots)
    if args.json:
        print(report.to_json())
        return 1 if report.has_errors else 0
    for diagnostic in report:
        print(diagnostic.render())
    print(report.summary())
    return 1 if report.has_errors else 0


#: the fixed `repro sanitize` question battery: every query shape the
#: executor exercises, repeated so single-flight leaders and waiters,
#: cache hits, and scheduler reordering all occur under the sanitizer
_SANITIZE_QUESTIONS: tuple[str, ...] = (
    "Is there a dog near the fence?",
    "What is on the table?",
    "Is there a person holding a cup?",
    "How many chairs are near the table?",
    "What is the man wearing?",
    "Is there a cat under the chair?",
)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.concurrency.sanitizer import SanitizerConfig
    from repro.dataset.kg import build_commonsense_kg
    from repro.synth import SceneGenerator

    scenes = SceneGenerator(seed=args.seed).generate_pool(args.scenes)
    config = SVQAConfig(
        workers=args.workers,
        sanitizer=SanitizerConfig(seed=args.seed),
    )
    svqa = SVQA(scenes, build_commonsense_kg(), config)
    questions = list(_SANITIZE_QUESTIONS) * args.repeat
    try:
        svqa.build()
        svqa.answer_many(questions)
        assert svqa.sanitizer is not None
        report = svqa.sanitizer.report()
    finally:
        svqa.release_sanitizer()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.findings else 0


def _cmd_parse(args: argparse.Namespace) -> int:
    try:
        graph = generate_query_graph(args.question)
    except QueryError as exc:
        print(f"parse failed: {exc}", file=sys.stderr)
        return 1
    print(describe_query_graph(graph))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SVQA reproduction command-line interface",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ask = commands.add_parser("ask", help="answer a question over the "
                                          "movie scenario")
    ask.add_argument("question", nargs="?", default=None)
    ask.add_argument("--json", action="store_true",
                     help="emit the stable Answer.to_dict() JSON "
                          "payload (the same shape POST /ask returns)")
    ask.set_defaults(handler=_cmd_ask)

    serve = commands.add_parser(
        "serve",
        help="long-lived QA server: POST /ask, GET /healthz, "
             "GET /metrics",
    )
    serve.add_argument("--scenario", choices=("movie", "mvqa"),
                       default="movie",
                       help="corpus built once at startup")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8030,
                       help="0 picks an ephemeral port")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for shed decisions and chaos faults")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="batch-executor worker threads")
    serve.add_argument("--max-batch", type=_positive_int, default=8,
                       help="micro-batch size cap")
    serve.add_argument("--batch-wait", type=_non_negative_float,
                       default=0.0,
                       help="micro-batch coalescing window in wall "
                            "seconds (0 = inline, deterministic)")
    serve.add_argument("--rate", type=_positive_float, default=10.0,
                       help="token-bucket refill per client per "
                            "simulated second")
    serve.add_argument("--burst", type=_positive_int, default=20,
                       help="token-bucket capacity per client")
    serve.add_argument("--max-queue", type=_positive_int, default=64,
                       help="hard in-flight bound (503 above it)")
    serve.add_argument("--soft-queue", type=int, default=None,
                       help="probabilistic shedding starts here "
                            "(default: 3/4 of --max-queue)")
    serve.add_argument("--deadline-ms", type=_positive_float,
                       default=None,
                       help="default per-request deadline in simulated "
                            "milliseconds when no Deadline-Ms header "
                            "is sent")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="durable store directory (repro snapshot) "
                            "to warm-start from: recover snapshot+WAL "
                            "instead of re-running the vision "
                            "pipeline; unrecoverable stores fall back "
                            "to a cold rebuild")
    serve.add_argument("--chaos", type=_unit_rate, default=None,
                       metavar="RATE",
                       help="serve under fault injection at this "
                            "per-site rate")
    serve.set_defaults(handler=_cmd_serve)

    snapshot = commands.add_parser(
        "snapshot",
        help="build a scenario's merged graph and write its durable "
             "checksummed snapshot (for repro serve --snapshot)",
    )
    snapshot.add_argument("--out", required=True, metavar="DIR",
                          help="durable store directory to write")
    snapshot.add_argument("--scenario", choices=("movie", "mvqa"),
                          default="movie",
                          help="corpus to build and snapshot")
    snapshot.add_argument("--seed", type=int, default=0,
                          help="pipeline seed (must match the serving "
                               "seed for byte-identical answers)")
    snapshot.add_argument("--workers", type=_positive_int, default=1,
                          help="build-time worker threads")
    snapshot.set_defaults(handler=_cmd_snapshot)

    recover = commands.add_parser(
        "recover",
        help="recover a durable store (snapshot + WAL replay) and "
             "print the attributed verdict",
    )
    recover.add_argument("--store", required=True, metavar="DIR",
                         help="durable store directory to recover")
    recover.set_defaults(handler=_cmd_recover)

    torture = commands.add_parser(
        "store-torture",
        help="crash-torture the durable store: damage snapshot+WAL at "
             "every record boundary and verify every recovery",
    )
    torture.add_argument("--seed", type=int, default=0,
                         help="seed for the scripted mutation history")
    torture.add_argument("--json", action="store_true",
                         help="emit the full per-case report as JSON")
    torture.set_defaults(handler=_cmd_store_torture)

    mvqa = commands.add_parser("mvqa", help="evaluate SVQA on MVQA")
    mvqa.add_argument("--fast", action="store_true")
    mvqa.add_argument("--workers", type=_positive_int, default=1,
                      help="worker threads for batch answering")
    mvqa.set_defaults(handler=_cmd_mvqa)

    bench = commands.add_parser(
        "bench", help="concurrent batch benchmark + executor stats"
    )
    bench.add_argument("--fast", action="store_true")
    bench.add_argument("--workers", type=_positive_int, default=4,
                       help="worker threads for batch answering")
    bench.add_argument("--chaos", type=_unit_rate, default=None,
                       metavar="RATE",
                       help="run the batch under fault injection at "
                            "this per-site rate (adds the resilience "
                            "counters to the stats table)")
    bench.add_argument("--seed", type=int, default=0,
                       help="fault-injection seed for --chaos")
    bench.add_argument("--no-planner", dest="planner",
                       action="store_false", default=True,
                       help="disable the cost-based multi-query "
                            "planner (cross-query plan sharing)")
    bench.add_argument("--no-retrieval", dest="retrieval",
                       action="store_false", default=True,
                       help="disable the ANN retrieval tier (exact "
                            "pre-retrieval scoring path)")
    bench.add_argument("--baseline", default="BENCH_baseline.json",
                       metavar="PATH",
                       help="recorded baseline used to calibrate the "
                            "plan-aware makespan predictor (skipped "
                            "when absent)")
    bench.add_argument("--explain", action="store_true",
                       help="print one definition line per reported "
                            "metric (from the shared glossary)")
    bench.set_defaults(handler=_cmd_bench)

    plan = commands.add_parser(
        "plan",
        help="print the shared-sub-plan forest for an MVQA batch and "
             "the predicted-vs-measured makespan",
    )
    plan.add_argument("--fast", action="store_true")
    plan.add_argument("--workers", type=_positive_int, default=1,
                      help="worker threads for batch answering")
    plan.add_argument("--baseline", default="BENCH_baseline.json",
                      metavar="PATH",
                      help="recorded baseline used to calibrate the "
                           "makespan predictor")
    plan.add_argument("--top", type=_positive_int, default=12,
                      help="shared nodes to list, by fan-out uses")
    plan.set_defaults(handler=_cmd_plan, planner=True)

    profile = commands.add_parser(
        "profile",
        help="MVQA suite with tracing: per-stage simulated-time "
             "breakdown + deterministic artifacts",
    )
    profile.add_argument("--fast", action="store_true")
    profile.add_argument("--seed", type=int, default=5,
                         help="dataset seed (same seed => "
                              "byte-identical artifacts)")
    profile.add_argument("--workers", type=_positive_int, default=1,
                         help="worker threads (keep 1 for "
                              "byte-identical snapshots)")
    profile.add_argument("--snapshot", default=None, metavar="PATH",
                         help="write the metric registry snapshot "
                              "as deterministic JSON")
    profile.add_argument("--spans", default=None, metavar="PATH",
                         help="write the span export as JSON Lines")
    profile.add_argument("--baseline", default=None, metavar="PATH",
                         help="write the BENCH_baseline.json payload")
    profile.add_argument("--check-ceiling", default=None, metavar="PATH",
                         help="compare this run's SimClock charge "
                              "counts against a recorded baseline and "
                              "fail if vertex_match, edge_scan, or "
                              "embed_score exceeds its ceiling")
    profile.add_argument("--no-planner", dest="planner",
                         action="store_false", default=True,
                         help="profile without the multi-query "
                              "planner (pre-planner execution path)")
    profile.add_argument("--no-retrieval", dest="retrieval",
                         action="store_false", default=True,
                         help="profile without the ANN retrieval tier "
                              "(exact pre-retrieval scoring path)")
    profile.set_defaults(handler=_cmd_profile)

    trace = commands.add_parser(
        "trace",
        help="answer one movie-scenario question and print its span "
             "tree",
    )
    trace.add_argument("question", nargs="?", default=None)
    trace.add_argument("--build", action="store_true",
                       help="also print the offline build phase's "
                            "trace")
    trace.set_defaults(handler=_cmd_trace)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection sweep over MVQA (graceful degradation)",
    )
    chaos.add_argument("--fast", action="store_true")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-injection seed (same seed => "
                            "byte-identical report)")
    chaos.add_argument("--rates", default="0.0,0.05,0.1,0.2",
                       help="comma list of per-site fault rates")
    chaos.add_argument("--deadline", type=float, default=None,
                       help="per-query simulated-seconds budget")
    chaos.add_argument("--workers", type=_positive_int, default=1,
                       help="worker threads for batch answering")
    chaos.add_argument("--dump", default=None, metavar="PATH",
                       help="write every answer as JSON Lines using "
                            "the stable Answer.to_dict() payload")
    chaos.set_defaults(handler=_cmd_chaos)

    stats = commands.add_parser("stats", help="MVQA dataset statistics")
    stats.add_argument("--fast", action="store_true")
    stats.set_defaults(handler=_cmd_stats)

    retrieval = commands.add_parser(
        "retrieval",
        help="inspect the ANN + BM25 retrieval-tier indexes over the "
             "MVQA merged graph",
    )
    retrieval.add_argument("--fast", action="store_true",
                           help="build the reduced MVQA pool")
    retrieval.add_argument("--query", default=None, metavar="PHRASE",
                           help="print the ANN neighborhood of this "
                                "phrase over the indexed edge labels")
    retrieval.add_argument("--question", default=None, metavar="TEXT",
                           help="dry-run the BM25-ranked degraded-"
                                "parse fallback for this question")
    retrieval.add_argument("--top", type=_positive_int, default=8,
                           help="ANN neighbors to list (default 8)")
    retrieval.set_defaults(handler=_cmd_retrieval)

    parse_cmd = commands.add_parser("parse", help="show a question's "
                                                  "query graph")
    parse_cmd.add_argument("question")
    parse_cmd.set_defaults(handler=_cmd_parse)

    lint_queries = commands.add_parser(
        "lint-queries",
        help="semantic-validate query graphs (defaults to the 100 "
             "MVQA questions)",
    )
    lint_queries.add_argument("question", nargs="*", default=None,
                              help="ad hoc questions to lint instead "
                                   "of the MVQA sweep")
    lint_queries.add_argument("--fast", action="store_true",
                              help="build the reduced MVQA pool")
    lint_queries.add_argument("--strict-parse", action="store_true",
                              help="treat parse rejections (the "
                                   "expected Fig. 8(a) failures) as "
                                   "lint errors")
    lint_queries.add_argument("--json", action="store_true",
                              help="emit the findings as JSON "
                                   "(stable key order, for CI "
                                   "annotation)")
    lint_queries.set_defaults(handler=_cmd_lint_queries)

    lint_code = commands.add_parser(
        "lint-code",
        help="run the repo-invariant linter (RP001-RP011) over the "
             "source tree",
    )
    lint_code.add_argument("paths", nargs="*", default=None,
                           help="files or directories to lint "
                                "(default: the repro package)")
    lint_code.add_argument("--json", action="store_true",
                           help="emit the findings as JSON (stable "
                                "key order, for CI annotation)")
    lint_code.set_defaults(handler=_cmd_lint_code)

    sanitize = commands.add_parser(
        "sanitize",
        help="run the stress workload under the runtime lock/race "
             "sanitizer and print a deterministic findings report",
    )
    sanitize.add_argument("--seed", type=int, default=7,
                          help="workload seed (also labels the "
                               "report; default 7)")
    sanitize.add_argument("--workers", type=int, default=2,
                          help="worker threads for the batch run "
                               "(default 2)")
    sanitize.add_argument("--scenes", type=int, default=6,
                          help="synthetic scenes in the pool "
                               "(default 6)")
    sanitize.add_argument("--repeat", type=int, default=2,
                          help="times the question battery is "
                               "repeated (default 2)")
    sanitize.add_argument("--json", action="store_true",
                          help="emit the report as JSON")
    sanitize.set_defaults(handler=_cmd_sanitize)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
