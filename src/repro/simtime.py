"""Simulated-time cost model.

The paper reports wall-clock latencies measured on an 8xV100 GPU server
(e.g. SVQA answers 100 MVQA questions in 10.38 s, VisualBert needs
3375.56 s).  We have neither the hardware nor the pretrained models, so
latency in this reproduction is accounted by an explicit *cost model*:
every primitive operation (loading a model, running one image through a
detector, probing the merged graph, ...) charges a configurable number
of *simulated seconds* to a :class:`SimClock`.

This preserves exactly what the paper's latency experiments measure —
*how many expensive operations each design performs* — while staying
deterministic and fast to run.  Benchmarks report simulated seconds;
the ratios between systems (e.g. SVQA being ~300x faster than
VisualBert because it never re-runs a vision model per question) are
reproduced structurally, because the operation counts are real.

Example
-------
>>> clock = SimClock()
>>> clock.charge("graph_probe")
>>> clock.elapsed > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default cost table, in simulated seconds per operation.  The values
#: are calibrated so that the end-to-end benchmarks land in the same
#: regime as the paper's Tables III/IV and Figures 9-11; see
#: EXPERIMENTS.md for the calibration notes.
DEFAULT_COSTS: dict[str, float] = {
    # --- vision ---
    "model_load_vqa": 120.0,        # loading a large VQA checkpoint
    "model_load_splitter": 8.0,     # loading an ABCD/DisSim checkpoint
    "model_load_sgg": 30.0,         # loading a scene-graph model
    "vqa_forward": 0.35,            # one image+question forward pass
    "sgg_forward": 0.25,            # one image through the SGG pipeline
    "detector_forward": 0.08,       # one image through the detector
    "relation_forward": 0.12,       # relation prediction for one image
    # --- NLP ---
    "pos_tag": 0.004,               # tagging one question
    "dep_parse": 0.02,              # parsing one question
    "clause_segment": 0.003,        # clause segmentation
    "spoc_extract": 0.008,          # SPOC extraction per clause
    "splitter_forward": 0.6,        # one question through a DL splitter
    # --- graph / executor ---
    "vertex_match": 0.00008,        # one candidate examined in matchVertex
    "scope_scan": 0.003,            # candidate-index probe for one SPOC endpoint
    "path_probe": 0.008,            # relation-pair retrieval for one vertex pair set
    "edge_scan": 0.000028,          # scanning one edge during getRelations
    "embed_score": 0.0007,          # one maxScore embedding comparison
    "ann_probe": 0.00002,           # one ANN score-memo hit (retrieval tier)
    "cache_hit": 0.0004,            # fetching a cached scope/path item
    "pair_filter": 0.000007,        # membership test on one materialized pair
    "kg_lookup": 0.006,             # direct storage lookup for rare vertices
    "subgraph_extract": 0.05,       # extracting one G[S(t,k)]
    "merge_link": 0.0008,           # linking one scene-graph vertex
    # --- durable store ---
    "store_record_io": 0.00002,     # framing/parsing one store record
    "store_fsync": 0.0008,          # one fsync barrier (WAL or snapshot)
}


@dataclass
class SimClock:
    """Accumulates simulated seconds charged by primitive operations.

    Parameters
    ----------
    costs:
        Mapping from operation name to cost in simulated seconds.
        Unknown operations raise ``KeyError`` so typos surface early.
    """

    costs: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    elapsed: float = 0.0
    counts: dict[str, int] = field(default_factory=dict)

    def charge(self, operation: str, times: int = 1) -> float:
        """Charge ``times`` occurrences of ``operation``.

        Returns the simulated seconds charged by this call.
        """
        if times < 0:
            raise ValueError(f"times must be >= 0, got {times}")
        cost = self.costs[operation] * times
        self.elapsed += cost
        self.counts[operation] = self.counts.get(operation, 0) + times
        return cost

    def charge_amount(self, operation: str, seconds: float) -> float:
        """Charge an explicit amount of simulated seconds.

        Used for data-dependent costs (e.g. scanning ``n`` edges charges
        ``n * costs['edge_scan']`` via :meth:`charge`, but a few call
        sites compute the amount themselves).
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.elapsed += seconds
        self.counts[operation] = self.counts.get(operation, 0) + 1
        return seconds

    def reset(self) -> None:
        """Zero the clock and the per-operation counters."""
        self.elapsed = 0.0
        self.counts.clear()

    def fork(self) -> SimClock:
        """A fresh zeroed clock sharing this clock's cost table.

        Concurrent batch execution gives every worker thread its own
        *shard* so charging stays race-free; shards are folded back
        with :meth:`merge` when the batch completes.
        """
        return SimClock(costs=dict(self.costs))

    def merge(self, other: SimClock) -> None:
        """Fold another clock's charges into this one.

        Elapsed times add up (total simulated *work*, not wall time —
        the makespan across shards is reported separately) and the
        per-operation counters accumulate.
        """
        self.elapsed += other.elapsed
        for operation, count in other.counts.items():
            self.counts[operation] = self.counts.get(operation, 0) + count

    def snapshot(self) -> ClockSnapshot:
        """Capture the current elapsed time for later interval measurement."""
        return ClockSnapshot(self, self.elapsed)


@dataclass
class ClockSnapshot:
    """A point-in-time marker on a :class:`SimClock`."""

    clock: SimClock
    start: float

    @property
    def interval(self) -> float:
        """Simulated seconds elapsed since the snapshot was taken."""
        return self.clock.elapsed - self.start
