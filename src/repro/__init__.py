"""repro — a reproduction of "Across Images and Graphs for Question
Answering" (SVQA, ICDE 2024).

The package implements the full SVQA stack from scratch: a graph
database substrate, a simulated vision pipeline (detector + relation
prediction + TDE debiasing), a computational-linguistics substrate
(POS tagging, dependency parsing, embeddings), the SVQA core (data
aggregator, query-graph generator, query executor with key-centric
caching and scheduling), the MVQA dataset builder, and the paper's
baselines.

Quickstart
----------
>>> from repro import SVQA, build_movie_kg
>>> # see examples/quickstart.py for a full end-to-end run
"""

from repro.core.pipeline import SVQA, SVQAConfig
from repro.dataset.kg import build_movie_kg
from repro.simtime import SimClock

__version__ = "1.0.0"

__all__ = ["SVQA", "SVQAConfig", "SimClock", "build_movie_kg", "__version__"]
