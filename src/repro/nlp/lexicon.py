"""POS lexicon and word lists for the question grammar.

The tagger in :mod:`repro.nlp.pos` resolves words through this lexicon
first and only falls back to suffix heuristics for unknown words.  The
lexicon covers the closed-class words of English plus the open-class
vocabulary used by the synthetic scenes, the knowledge graph, and the
MVQA question templates.

Tags are Penn Treebank tags, the same tagset the Stanford POS Tagger
emits (the paper, §IV-B, uses 4 of the 45 tags — nouns, verbs,
adjectives, adverbs — to segment clauses).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# closed classes
# ---------------------------------------------------------------------------

DETERMINERS = {"the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
               "these": "DT", "those": "DT", "some": "DT", "any": "DT",
               "every": "DT", "each": "DT", "no": "DT", "all": "DT",
               "both": "DT"}

WH_WORDS = {
    "what": "WP", "who": "WP", "whom": "WP", "whose": "WP$",
    "which": "WDT", "when": "WRB", "where": "WRB", "why": "WRB",
    "how": "WRB",
}

PREPOSITIONS = {
    "of", "in", "on", "at", "by", "with", "from", "to", "under", "over",
    "behind", "beside", "between", "near", "into", "onto", "above",
    "below", "through", "across", "around", "inside", "outside",
    "against", "along", "during", "within", "toward", "towards",
    "upon", "off", "out",
}

CONJUNCTIONS = {"and", "or", "but", "nor"}

PRONOUNS = {"it": "PRP", "he": "PRP", "she": "PRP", "they": "PRP",
            "him": "PRP", "her": "PRP", "them": "PRP", "i": "PRP",
            "you": "PRP", "we": "PRP", "us": "PRP", "me": "PRP"}

BE_FORMS = {"is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD",
            "be": "VB", "been": "VBN", "being": "VBG", "am": "VBP"}

AUX_DO = {"do": "VBP", "does": "VBZ", "did": "VBD"}

AUX_HAVE = {"have": "VBP", "has": "VBZ", "had": "VBD"}

MODALS = {"can", "could", "will", "would", "shall", "should", "may",
          "might", "must"}

EXISTENTIAL = {"there": "EX"}

PARTICLES = {"n't": "RB", "not": "RB"}

# ---------------------------------------------------------------------------
# open classes — verbs
# ---------------------------------------------------------------------------

#: base -> (VBZ, VBP, VBG, VBN, VBD).  The regular slots can be derived,
#: but listing them keeps tagging exact for the grammar's verbs.
VERB_TABLE: dict[str, tuple[str, str, str, str, str]] = {
    "wear": ("wears", "wear", "wearing", "worn", "wore"),
    "carry": ("carries", "carry", "carrying", "carried", "carried"),
    "hold": ("holds", "hold", "holding", "held", "held"),
    "sit": ("sits", "sit", "sitting", "sat", "sat"),
    "stand": ("stands", "stand", "standing", "stood", "stood"),
    "ride": ("rides", "ride", "riding", "ridden", "rode"),
    "watch": ("watches", "watch", "watching", "watched", "watched"),
    "hang": ("hangs", "hang", "hanging", "hung", "hung"),
    "appear": ("appears", "appear", "appearing", "appeared", "appeared"),
    "walk": ("walks", "walk", "walking", "walked", "walked"),
    "run": ("runs", "run", "running", "run", "ran"),
    "jump": ("jumps", "jump", "jumping", "jumped", "jumped"),
    "catch": ("catches", "catch", "catching", "caught", "caught"),
    "eat": ("eats", "eat", "eating", "eaten", "ate"),
    "drink": ("drinks", "drink", "drinking", "drunk", "drank"),
    "drive": ("drives", "drive", "driving", "driven", "drove"),
    "fly": ("flies", "fly", "flying", "flown", "flew"),
    "look": ("looks", "look", "looking", "looked", "looked"),
    "situate": ("situates", "situate", "situating", "situated", "situated"),
    "park": ("parks", "park", "parking", "parked", "parked"),
    "pull": ("pulls", "pull", "pulling", "pulled", "pulled"),
    "push": ("pushes", "push", "pushing", "pushed", "pushed"),
    "feed": ("feeds", "feed", "feeding", "fed", "fed"),
    "chase": ("chases", "chase", "chasing", "chased", "chased"),
    "follow": ("follows", "follow", "following", "followed", "followed"),
    "lie": ("lies", "lie", "lying", "lain", "lay"),
    "sleep": ("sleeps", "sleep", "sleeping", "slept", "slept"),
    "play": ("plays", "play", "playing", "played", "played"),
    "face": ("faces", "face", "facing", "faced", "faced"),
    "lean": ("leans", "lean", "leaning", "leaned", "leaned"),
    "attach": ("attaches", "attach", "attaching", "attached", "attached"),
    "cover": ("covers", "cover", "covering", "covered", "covered"),
    "surround": ("surrounds", "surround", "surrounding", "surrounded",
                 "surrounded"),
    "belong": ("belongs", "belong", "belonging", "belonged", "belonged"),
    "live": ("lives", "live", "living", "lived", "lived"),
    "own": ("owns", "own", "owning", "owned", "owned"),
    "know": ("knows", "know", "knowing", "known", "knew"),
    "love": ("loves", "love", "loving", "loved", "loved"),
    "date": ("dates", "date", "dating", "dated", "dated"),
    "marry": ("marries", "marry", "marrying", "married", "married"),
    "teach": ("teaches", "teach", "teaching", "taught", "taught"),
    "study": ("studies", "study", "studying", "studied", "studied"),
    "fight": ("fights", "fight", "fighting", "fought", "fought"),
    "help": ("helps", "help", "helping", "helped", "helped"),
    "visit": ("visits", "visit", "visiting", "visited", "visited"),
    "share": ("shares", "share", "sharing", "shared", "shared"),
    "contain": ("contains", "contain", "containing", "contained",
                "contained"),
    "show": ("shows", "show", "showing", "shown", "showed"),
    "graze": ("grazes", "graze", "grazing", "grazed", "grazed"),
    "rest": ("rests", "rest", "resting", "rested", "rested"),
    "wait": ("waits", "wait", "waiting", "waited", "waited"),
    "cross": ("crosses", "cross", "crossing", "crossed", "crossed"),
}

_TAG_SLOTS = ("VBZ", "VBP", "VBG", "VBN", "VBD")


def verb_form_index() -> dict[str, tuple[str, str]]:
    """Map every inflected verb form to ``(tag, lemma)``.

    The base form maps to ``("VB", lemma)``.  When a form is ambiguous
    between slots (e.g. ``carried`` is both VBN and VBD) the participle
    (VBN) wins, because the question grammar uses participles far more
    often (passives, reduced relatives); the tagger's contextual rules
    re-disambiguate after a VBD-selecting context.
    """
    index: dict[str, tuple[str, str]] = {}
    for lemma, forms in VERB_TABLE.items():
        index.setdefault(lemma, ("VB", lemma))
        for tag, form in zip(_TAG_SLOTS, forms, strict=True):
            index.setdefault(form, (tag, lemma))
    return index


# ---------------------------------------------------------------------------
# open classes — nouns
# ---------------------------------------------------------------------------

#: singular -> plural for the domain vocabulary.  Scene categories, KG
#: entity types, and question-template nouns all come from here (the
#: synth taxonomy imports this table so the vocabularies cannot drift).
NOUN_TABLE: dict[str, str] = {
    # humans
    "man": "men", "woman": "women", "person": "people", "child": "children",
    "boy": "boys", "girl": "girls", "rider": "riders", "player": "players",
    "wizard": "wizards", "witch": "witches", "muggle": "muggles",
    "girlfriend": "girlfriends", "boyfriend": "boyfriends",
    "friend": "friends", "teacher": "teachers", "student": "students",
    "owner": "owners", "driver": "drivers",
    # animals
    "dog": "dogs", "cat": "cats", "horse": "horses", "bird": "birds",
    "cow": "cows", "sheep": "sheep", "bear": "bears", "elephant":
    "elephants", "zebra": "zebras", "giraffe": "giraffes", "pet": "pets",
    "animal": "animals", "puppy": "puppies", "kitten": "kittens",
    "owl": "owls",
    # vehicles
    "car": "cars", "bus": "buses", "truck": "trucks", "bicycle": "bicycles",
    "motorcycle": "motorcycles", "train": "trains", "boat": "boats",
    "airplane": "airplanes", "vehicle": "vehicles",
    # buildings / structures
    "house": "houses", "building": "buildings", "tower": "towers",
    "bridge": "bridges", "castle": "castles", "station": "stations",
    "fence": "fences", "bench": "benches", "wall": "walls",
    # objects
    "frisbee": "frisbees", "ball": "balls", "kite": "kites",
    "umbrella": "umbrellas", "backpack": "backpacks", "bag": "bags",
    "hat": "hats", "helmet": "helmets", "robe": "robes", "cloak": "cloaks",
    "scarf": "scarves", "coat": "coats", "shirt": "shirts",
    "jacket": "jackets", "dress": "dresses", "suit": "suits",
    "wand": "wands", "broom": "brooms", "book": "books",
    "bottle": "bottles", "cup": "cups", "bowl": "bowls",
    "chair": "chairs", "sofa": "sofas", "couch": "couches", "bed": "beds",
    "table": "tables", "tv": "tvs", "television": "televisions",
    "laptop": "laptops", "phone": "phones", "clock": "clocks",
    "toy": "toys", "leash": "leashes", "collar": "collars",
    "skateboard": "skateboards", "surfboard": "surfboards",
    "snowboard": "snowboards", "ski": "skis",
    # scene / abstract
    "grass": "grasses", "tree": "trees", "road": "roads",
    "street": "streets", "sidewalk": "sidewalks", "field": "fields",
    "beach": "beaches", "park": "parks", "sky": "skies",
    "window": "windows", "door": "doors", "kind": "kinds",
    "type": "types", "sort": "sorts", "number": "numbers",
    "scene": "scenes", "image": "images", "picture": "pictures",
    "clothes": "clothes", "movie": "movies", "character": "characters",
    "food": "foods", "plate": "plates", "pizza": "pizzas",
    "sandwich": "sandwiches", "apple": "apples", "banana": "bananas",
}


def noun_form_index() -> dict[str, tuple[str, str]]:
    """Map noun forms to ``(tag, lemma)`` — NN for singular, NNS plural."""
    index: dict[str, tuple[str, str]] = {}
    for singular, plural in NOUN_TABLE.items():
        index.setdefault(singular, ("NN", singular))
        if plural != singular:
            index.setdefault(plural, ("NNS", singular))
        else:
            # invariant plurals (sheep, clothes) stay NN(S) ambiguous;
            # prefer NNS for words the templates only use plurally
            index.setdefault(plural, ("NN", singular))
    # plural-only nouns
    index["clothes"] = ("NNS", "clothes")
    index["people"] = ("NNS", "person")
    return index


# ---------------------------------------------------------------------------
# open classes — adjectives / adverbs
# ---------------------------------------------------------------------------

ADJECTIVES = {
    "big", "small", "large", "little", "red", "blue", "green", "yellow",
    "black", "white", "brown", "gray", "orange", "young", "old", "tall",
    "short", "long", "frequent", "same", "different", "many", "much",
    "wooden", "metal", "plastic", "dark", "bright", "happy",
}

SUPERLATIVE_ADJ = {"most": "RBS", "least": "RBS", "biggest": "JJS",
                   "smallest": "JJS", "largest": "JJS", "tallest": "JJS"}

COMPARATIVE_ADJ = {"more": "RBR", "less": "RBR", "bigger": "JJR",
                   "smaller": "JJR", "fewer": "JJR"}

ADVERBS = {
    "frequently", "often", "usually", "always", "never", "together",
    "nearby", "outside", "inside", "away", "closely", "directly", "also",
    "only", "just", "still",
}


def build_lexicon() -> dict[str, tuple[str, str]]:
    """Assemble the full word -> (tag, lemma) lexicon.

    Later entries never overwrite earlier ones, so closed-class
    assignments take priority (e.g. "that" stays DT/WDT material even
    though templates never use it as a noun).
    """
    lexicon: dict[str, tuple[str, str]] = {}

    def put(word: str, tag: str, lemma: str | None = None) -> None:
        lexicon.setdefault(word, (tag, lemma or word))

    for word, tag in WH_WORDS.items():
        put(word, tag)
    for word, tag in DETERMINERS.items():
        put(word, tag)
    for word in PREPOSITIONS:
        put(word, "IN")
    for word in CONJUNCTIONS:
        put(word, "CC")
    for word, tag in PRONOUNS.items():
        put(word, tag)
    for word, tag in BE_FORMS.items():
        put(word, tag, "be")
    for word, tag in AUX_DO.items():
        put(word, tag, "do")
    for word, tag in AUX_HAVE.items():
        put(word, tag, "have")
    for word in MODALS:
        put(word, "MD")
    for word, tag in EXISTENTIAL.items():
        put(word, tag)
    for word, tag in PARTICLES.items():
        put(word, tag, "not")
    put("'s", "POS")
    put("to", "TO")

    for word, (tag, lemma) in verb_form_index().items():
        put(word, tag, lemma)
    for word, (tag, lemma) in noun_form_index().items():
        put(word, tag, lemma)
    for word in ADJECTIVES:
        put(word, "JJ")
    for word, tag in SUPERLATIVE_ADJ.items():
        put(word, tag)
    for word, tag in COMPARATIVE_ADJ.items():
        put(word, tag)
    for word in ADVERBS:
        put(word, "RB")
    return lexicon
