"""Semantic lexicon: synonym clusters and hypernym links.

The paper relies on distributional similarity twice:

* ``maxScore`` (Algorithm 3) matches a SPOC predicate/constraint to the
  most similar merged-graph edge label by embedding cosine similarity;
* reasoning-answer scoring treats "dog" and "puppy" as consistent
  (§VII, experimental setting).

With no pretrained word2vec available offline, similarity structure is
injected through explicit synonym clusters: words in one cluster get
embeddings pulled toward a shared centroid (see
:mod:`repro.nlp.embeddings`).  Hypernym links back the "kind of X"
resolution in ``matchVertex`` and the external-knowledge edges of the
knowledge graph (pet -> dog).
"""

from __future__ import annotations

#: Each tuple is one synonym cluster.  A word may appear in only one
#: cluster (validated below) — multi-sense words would need per-sense
#: embeddings, which the question grammar never requires.
SYNONYM_CLUSTERS: tuple[tuple[str, ...], ...] = (
    # entities
    ("dog", "puppy", "canine", "canis", "hound"),
    ("cat", "kitten", "feline"),
    ("horse", "pony", "stallion"),
    ("bird", "owl", "fowl"),
    ("man", "woman", "person", "human", "people", "boy", "girl", "child",
     "guy", "adult"),
    ("wizard", "sorcerer", "mage"),
    ("car", "vehicle", "automobile", "truck", "bus", "van"),
    ("bicycle", "bike", "motorcycle"),
    ("house", "building", "home", "castle", "tower"),
    ("clothes", "clothing", "garment", "outfit", "robe", "cloak", "coat",
     "jacket", "dress", "suit", "shirt", "scarf"),
    ("hat", "helmet", "cap"),
    ("frisbee", "disc"),
    ("ball", "baseball", "football"),
    ("sofa", "couch", "settee"),
    ("tv", "television", "screen"),
    ("grass", "lawn", "field", "meadow"),
    ("road", "street", "sidewalk", "pavement"),
    ("kind", "type", "sort", "category"),
    ("girlfriend", "sweetheart"),
    ("friend", "pal", "companion"),
    ("food", "meal", "pizza", "sandwich"),
    ("toy", "plaything"),
    # predicates
    ("wear", "wearing", "dressed", "worn"),
    ("carry", "carrying", "hold", "holding", "held"),
    ("sit", "sitting", "seated", "situated", "situate"),
    ("stand", "standing"),
    ("ride", "riding", "mounted"),
    ("watch", "watching", "look", "looking", "observe", "face", "facing"),
    ("hang", "accompany", "together"),
    ("near", "beside", "close", "nearby", "next"),
    ("behind", "rear"),
    ("under", "below", "beneath"),
    ("above", "over"),
    ("walk", "walking", "stroll"),
    ("run", "running", "chase", "chasing"),
    ("jump", "jumping", "leap"),
    ("catch", "catching", "grab"),
    ("eat", "eating", "feed", "feeding", "graze", "grazing"),
    ("play", "playing"),
    ("sleep", "sleeping", "rest", "resting", "lie", "lying"),
    ("drive", "driving"),
    ("park", "parked"),
    ("pull", "pulling", "drag"),
    ("appear", "appearing", "present"),
    # constraints
    ("most", "maximum", "highest"),
    ("least", "minimum", "lowest", "fewest"),
    ("frequently", "often", "frequent", "usually", "commonly"),
)

#: hyponym -> hypernym ("a dog is a pet", "a pet is an animal").  These
#: become ``is a`` edges in the knowledge graph and drive "kind of X"
#: resolution.
HYPERNYMS: dict[str, str] = {
    "dog": "pet",
    "cat": "pet",
    "bird": "pet",
    "pet": "animal",
    "horse": "animal",
    "cow": "animal",
    "sheep": "animal",
    "bear": "animal",
    "elephant": "animal",
    "zebra": "animal",
    "giraffe": "animal",
    "man": "person",
    "woman": "person",
    "boy": "person",
    "girl": "person",
    "child": "person",
    "wizard": "person",
    "witch": "person",
    "car": "vehicle",
    "bus": "vehicle",
    "truck": "vehicle",
    "bicycle": "vehicle",
    "motorcycle": "vehicle",
    "train": "vehicle",
    "boat": "vehicle",
    "airplane": "vehicle",
    "house": "building",
    "castle": "building",
    "tower": "building",
    "station": "building",
    "robe": "clothes",
    "cloak": "clothes",
    "coat": "clothes",
    "jacket": "clothes",
    "shirt": "clothes",
    "dress": "clothes",
    "suit": "clothes",
    "scarf": "clothes",
    "hat": "clothes",
    "helmet": "clothes",
    "pizza": "food",
    "sandwich": "food",
    "apple": "food",
    "banana": "food",
    "frisbee": "toy",
    "ball": "toy",
    "kite": "toy",
}


def cluster_of(word: str) -> tuple[str, ...] | None:
    """The synonym cluster containing ``word`` (lowercased), if any."""
    return _CLUSTER_INDEX.get(word.lower())


def are_synonyms(a: str, b: str) -> bool:
    """Whether two words share a synonym cluster (or are equal)."""
    if a.lower() == b.lower():
        return True
    cluster = cluster_of(a)
    return cluster is not None and b.lower() in cluster


def hypernym_chain(word: str) -> list[str]:
    """The chain of hypernyms above ``word`` (nearest first)."""
    chain = []
    current = word.lower()
    while current in HYPERNYMS:
        current = HYPERNYMS[current]
        if current in chain:  # defensive: cycles would loop forever
            break
        chain.append(current)
    return chain


def hyponyms_of(word: str) -> list[str]:
    """Direct hyponyms of ``word`` ("pet" -> ["dog", "cat", "bird"])."""
    lowered = word.lower()
    return [child for child, parent in HYPERNYMS.items() if parent == lowered]


def is_kind_of(child: str, ancestor: str) -> bool:
    """Whether ``ancestor`` appears anywhere above ``child``."""
    return ancestor.lower() in hypernym_chain(child)


def _build_cluster_index() -> dict[str, tuple[str, ...]]:
    index: dict[str, tuple[str, ...]] = {}
    for cluster in SYNONYM_CLUSTERS:
        for word in cluster:
            if word in index:
                raise ValueError(f"word {word!r} appears in two clusters")
            index[word] = cluster
    return index


_CLUSTER_INDEX = _build_cluster_index()
