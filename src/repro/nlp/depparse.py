"""Dependency parser producing Universal-Dependencies-style trees.

The paper parses questions with the Stanford neural transition parser
(Eq. 5).  This substitution is a deterministic *rule-cascade* parser
specialized for the English question grammar SVQA manipulates: WH
questions, passives, relative clauses (full and reduced), possessives,
"of"-chains, multiword prepositions, and adverbial constraints.  It
emits the same UD labels §IV-B consumes — ``nsubj``, ``nsubj:pass``,
``obj``, ``obl``, ``nmod``, ``nmod:poss``, ``case``, ``acl``,
``acl:relcl``, ``aux``, ``aux:pass``, ``cop``, ``det``, ``amod``,
``advmod``, ``compound``, ``compound:prt``, ``expl``, ``attr``,
``punct``, ``root``.

Parsing proceeds in phases:

1. merge multiword prepositions ("in front of" -> one IN node);
2. chunk noun phrases (determiner/adjective/noun spans, "of"-chains,
   possessives, proper-name compounds);
3. find verb groups (auxiliary + adverb + verb sequences, particles,
   passive detection);
4. attach: relative clauses first (consuming their complements), then
   the main clause (subject, object, obliques), with copular and
   existential questions special-cased.

A tree is always returned for inputs the grammar covers; questions
outside it (or containing FW-tagged foreign words in head positions)
raise :class:`repro.errors.ParseError` — the same observable failure
as Fig. 8(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.nlp.pos import TaggedToken, tag

NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS"}
ADJ_TAGS = {"JJ", "JJR", "JJS", "CD"}
VERB_TAGS = {"VB", "VBZ", "VBP", "VBG", "VBN", "VBD"}
RELATIVIZERS = {"who", "that", "which", "whom"}

#: multiword prepositions merged into a single IN node before chunking
MULTIWORD_PREPOSITIONS = (
    ("in", "front", "of"),
    ("on", "top", "of"),
    ("next", "to"),
    ("close", "to"),
    ("out", "of"),
)


@dataclass
class DependencyTree:
    """A parsed question: tokens plus a head/label arc per token.

    ``heads[i]`` is the token index of ``i``'s head, or ``-1`` for the
    root.  Exactly one root exists and the arcs form a tree.
    """

    tokens: list[TaggedToken]
    heads: list[int]
    labels: list[str]

    @property
    def root(self) -> int:
        return self.heads.index(-1)

    def children(self, head: int, label: str | None = None) -> list[int]:
        """Dependent indices of ``head`` (optionally filtered by label)."""
        return [
            i for i, (h, lab) in enumerate(zip(self.heads, self.labels, strict=True))
            if h == head and (label is None or lab == label)
        ]

    def child(self, head: int, label: str) -> int | None:
        """First dependent with ``label``, or None."""
        deps = self.children(head, label)
        return deps[0] if deps else None

    def label_of(self, index: int) -> str:
        return self.labels[index]

    def head_of(self, index: int) -> int:
        return self.heads[index]

    def word(self, index: int) -> str:
        return self.tokens[index].text

    def subtree(self, index: int) -> list[int]:
        """All indices in the subtree rooted at ``index`` (sorted)."""
        result = {index}
        frontier = [index]
        while frontier:
            current = frontier.pop()
            for i, head in enumerate(self.heads):
                if head == current and i not in result:
                    result.add(i)
                    frontier.append(i)
        return sorted(result)

    def text_of_subtree(
        self,
        index: int,
        exclude_labels: set[str] = frozenset(),
        exclude_direct: set[str] = frozenset(),
    ) -> str:
        """Surface text of a subtree.

        ``exclude_labels`` drops any descendant carrying the label
        *together with its whole subtree*; ``exclude_direct`` does the
        same but only for direct children of ``index`` (e.g. drop the
        head's own case marker while keeping a nested "of").
        """
        excluded: set[int] = set()
        for i in self.subtree(index):
            if i == index or i in excluded:
                continue
            label = self.labels[i]
            if label in exclude_labels or (
                label in exclude_direct and self.heads[i] == index
            ):
                excluded.update(self.subtree(i))
        words = []
        for i in self.subtree(index):
            if i in excluded or self.tokens[i].tag in {".", ",", ":"}:
                continue
            words.append(self.tokens[i].text)
        return " ".join(words)

    def to_table(self) -> str:
        """Human-readable arc table (for examples and debugging)."""
        lines = []
        for i, token in enumerate(self.tokens):
            head = self.heads[i]
            head_word = "ROOT" if head == -1 else self.tokens[head].text
            lines.append(
                f"{i:3d} {token.text:<14} {token.tag:<6} "
                f"{self.labels[i]:<12} <- {head_word}"
            )
        return "\n".join(lines)


@dataclass
class NounPhrase:
    """A chunked noun phrase: token span plus its head index."""

    start: int
    end: int  # exclusive
    head: int
    of_heads: list[int] = field(default_factory=list)  # heads of "of"-chained NPs

    def covers(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class VerbGroup:
    """A verb group: auxiliaries + adverbs + main verb (+ particle)."""

    start: int
    end: int  # exclusive
    main: int
    auxiliaries: list[int] = field(default_factory=list)
    adverbs: list[int] = field(default_factory=list)
    particles: list[int] = field(default_factory=list)
    passive: bool = False
    relativizer: int | None = None  # index of who/that/which, if any
    reduced_anchor: int | None = None  # NP head for reduced relatives


class _ArcSet:
    """Accumulates arcs while the parser runs."""

    def __init__(self, n: int) -> None:
        self.heads = [None] * n
        self.labels = [None] * n

    def attach(self, dep: int, head: int, label: str) -> None:
        if self.heads[dep] is not None:
            return  # first attachment wins
        self.heads[dep] = head
        self.labels[dep] = label

    def attached(self, dep: int) -> bool:
        return self.heads[dep] is not None


def parse(question: str) -> DependencyTree:
    """Tokenize, tag, and parse a question into a dependency tree."""
    return parse_tagged(tag(question))


def parse_tagged(tagged: list[TaggedToken]) -> DependencyTree:
    """Parse an already-tagged token sequence."""
    tokens = _merge_multiword_prepositions(tagged)
    _reject_foreign_heads(tokens)
    noun_phrases = _chunk_noun_phrases(tokens)
    verb_groups = _find_verb_groups(tokens, noun_phrases)
    return _attach(tokens, noun_phrases, verb_groups)


# ---------------------------------------------------------------------------
# phase 1: multiword prepositions
# ---------------------------------------------------------------------------

def _merge_multiword_prepositions(tagged: list[TaggedToken]) -> list[TaggedToken]:
    merged: list[TaggedToken] = []
    i = 0
    while i < len(tagged):
        hit = None
        for mwe in MULTIWORD_PREPOSITIONS:
            span = tagged[i:i + len(mwe)]
            if len(span) == len(mwe) and all(
                t.lower == w for t, w in zip(span, mwe, strict=True)
            ):
                hit = mwe
                break
        if hit is not None:
            text = " ".join(t.text for t in tagged[i:i + len(hit)])
            merged.append(TaggedToken(len(merged), text, "IN", text.lower()))
            i += len(hit)
        else:
            old = tagged[i]
            merged.append(TaggedToken(len(merged), old.text, old.tag, old.lemma))
            i += 1
    return merged


def _reject_foreign_heads(tokens: list[TaggedToken]) -> None:
    """FW words in noun positions break the parse, as in Fig. 8(a)."""
    for i, token in enumerate(tokens):
        if token.tag != "FW":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and (prev.tag in {"DT", "IN", "POS"} or
                                 prev.tag in ADJ_TAGS):
            raise ParseError(
                f"cannot parse: unknown foreign word {token.text!r} "
                f"in a noun position (POS tag FW)",
                term=token.text,
            )


# ---------------------------------------------------------------------------
# phase 2: noun-phrase chunking
# ---------------------------------------------------------------------------

def _chunk_noun_phrases(tokens: list[TaggedToken]) -> list[NounPhrase]:
    phrases: list[NounPhrase] = []
    i = 0
    n = len(tokens)
    while i < n:
        start = i
        # optional WH determiner ("what kind", "which dog", "how many dogs")
        if tokens[i].lower in {"what", "which"} and i + 1 < n and (
            tokens[i + 1].tag in NOUN_TAGS or tokens[i + 1].tag in ADJ_TAGS
        ):
            i += 1
        elif tokens[i].lower == "how" and i + 1 < n and \
                tokens[i + 1].lower in {"many", "much"}:
            i += 2
        # optional determiner
        if i < n and tokens[i].tag == "DT":
            i += 1
        # adjectives / numbers
        while i < n and tokens[i].tag in ADJ_TAGS:
            i += 1
        # noun head sequence
        noun_start = i
        while i < n and tokens[i].tag in NOUN_TAGS:
            i += 1
        if i == noun_start:
            i = start + 1
            continue
        head = i - 1  # last noun of the sequence heads the compound
        phrase = NounPhrase(start, i, head)
        # possessive: NP + 's + NP  -> continue, the possessed NP heads
        if i + 1 < n and tokens[i].tag == "POS":
            possessed = _chunk_single_np(tokens, i + 1)
            if possessed is not None:
                phrase = NounPhrase(start, possessed.end, possessed.head,
                                    of_heads=[head])
                i = possessed.end
        # "of"-chain: kind of clothes; attach chained heads
        while i + 1 < len(tokens) and tokens[i].lower == "of":
            chained = _chunk_single_np(tokens, i + 1)
            if chained is None:
                break
            phrase.of_heads.append(chained.head)
            phrase = NounPhrase(phrase.start, chained.end, phrase.head,
                                of_heads=phrase.of_heads)
            i = chained.end
        phrases.append(phrase)
    return phrases


def _chunk_single_np(tokens: list[TaggedToken], start: int) -> NounPhrase | None:
    """A single NP (no of-chain) beginning at ``start``, or None."""
    i = start
    n = len(tokens)
    if i < n and tokens[i].tag == "DT":
        i += 1
    while i < n and tokens[i].tag in ADJ_TAGS:
        i += 1
    noun_start = i
    while i < n and tokens[i].tag in NOUN_TAGS:
        i += 1
    if i == noun_start:
        return None
    return NounPhrase(start, i, i - 1)


# ---------------------------------------------------------------------------
# phase 3: verb groups
# ---------------------------------------------------------------------------

_AUX_LEMMAS = {"be", "do", "have"}


def _find_verb_groups(
    tokens: list[TaggedToken], noun_phrases: list[NounPhrase]
) -> list[VerbGroup]:
    covered = set()
    for np in noun_phrases:
        covered.update(range(np.start, np.end))

    groups: list[VerbGroup] = []
    i = 0
    n = len(tokens)
    while i < n:
        token = tokens[i]
        if i in covered or token.tag not in VERB_TAGS and token.tag != "MD":
            i += 1
            continue
        start = i
        auxiliaries: list[int] = []
        adverbs: list[int] = []
        # leading auxiliaries / modals / adverbs
        while i < n and (
            tokens[i].tag == "MD"
            or (tokens[i].lemma in _AUX_LEMMAS and _has_later_verb(tokens, i, covered))
            or tokens[i].tag in {"RB", "RBS"}
        ):
            if tokens[i].tag in {"RB", "RBS"}:
                adverbs.append(i)
            else:
                auxiliaries.append(i)
            i += 1
        if i >= n or tokens[i].tag not in VERB_TAGS or i in covered:
            # bare auxiliary (copula or do-support with distant verb)
            if auxiliaries:
                main = auxiliaries[-1]
                groups.append(VerbGroup(start, main + 1, main,
                                        auxiliaries[:-1], adverbs))
            i = max(i, start + 1)
            continue
        main = i
        i += 1
        particles: list[int] = []
        # verb particle: IN immediately after verb, followed by another IN
        # ("hanging out with") or clause end — a true preposition would be
        # followed by its NP instead.
        if i < n and tokens[i].tag == "IN" and (
            i + 1 >= n or tokens[i + 1].tag in {"IN", "."}
        ):
            particles.append(i)
            i += 1
        passive = tokens[main].tag == "VBN" and any(
            tokens[a].lemma == "be" for a in auxiliaries
        )
        groups.append(VerbGroup(start, i, main, auxiliaries, adverbs,
                                particles, passive))
    _mark_relatives(tokens, noun_phrases, groups)
    return groups


def _has_later_verb(tokens: list[TaggedToken], i: int, covered: set[int]) -> bool:
    """Whether an auxiliary at ``i`` is followed by a content verb within
    its own group (adverbs may intervene)."""
    j = i + 1
    while j < len(tokens) and tokens[j].tag in {"RB", "RBS"}:
        j += 1
    return j < len(tokens) and tokens[j].tag in VERB_TAGS and j not in covered


def _mark_relatives(
    tokens: list[TaggedToken],
    noun_phrases: list[NounPhrase],
    groups: list[VerbGroup],
) -> None:
    np_heads = [np.head for np in noun_phrases]
    all_of_heads = {h for np in noun_phrases for h in np.of_heads}
    for group in groups:
        before = group.start - 1
        # skip adverbs directly before the group start (already inside)
        if before >= 0 and tokens[before].lower in RELATIVIZERS and \
                tokens[before].tag in {"WP", "WDT"}:
            group.relativizer = before
        elif tokens[group.main].tag == "VBG" and not group.auxiliaries:
            # reduced relative: "the dog sitting on the sofa"
            anchor = _nearest_np_head_before(group.start, np_heads,
                                             all_of_heads)
            if anchor is not None:
                group.reduced_anchor = anchor


def _nearest_np_head_before(
    position: int, np_heads: list[int], of_heads: set[int]
) -> int | None:
    candidates = [h for h in np_heads if h < position]
    of_candidates = [h for h in of_heads if h < position]
    pool = candidates + of_candidates
    return max(pool) if pool else None


# ---------------------------------------------------------------------------
# phase 4: attachment
# ---------------------------------------------------------------------------

def _attach(
    tokens: list[TaggedToken],
    noun_phrases: list[NounPhrase],
    groups: list[VerbGroup],
) -> DependencyTree:
    n = len(tokens)
    arcs = _ArcSet(n)
    consumed_nps: set[int] = set()  # indices into noun_phrases

    _attach_np_internal(tokens, noun_phrases, arcs)

    relative_groups = [g for g in groups
                       if g.relativizer is not None or g.reduced_anchor is not None]
    main_groups = [g for g in groups
                   if g.relativizer is None and g.reduced_anchor is None]

    np_by_head = {np.head: i for i, np in enumerate(noun_phrases)}

    for group in relative_groups:
        _attach_verb_group_internal(tokens, group, arcs)
        if group.relativizer is not None:
            anchor = _nearest_np_head_before(
                group.relativizer,
                [np.head for np in noun_phrases],
                {h for np in noun_phrases for h in np.of_heads},
            )
            if anchor is None:
                raise ParseError(
                    f"relative clause at {tokens[group.main].text!r} "
                    "has no noun to attach to",
                    term=tokens[group.main].text,
                )
            arcs.attach(group.main, anchor, "acl:relcl")
            label = "nsubj:pass" if group.passive else "nsubj"
            arcs.attach(group.relativizer, group.main, label)
        else:
            arcs.attach(group.main, group.reduced_anchor, "acl")
        _attach_complements(tokens, noun_phrases, np_by_head, group, arcs,
                            consumed_nps, groups)

    tree_root = _attach_main_clause(tokens, noun_phrases, np_by_head,
                                    main_groups, groups, arcs, consumed_nps)

    # punctuation and stragglers
    for i in range(n):
        if not arcs.attached(i) and i != tree_root:
            label = "punct" if tokens[i].is_punct else "dep"
            arcs.attach(i, tree_root, label)

    heads = [h if h is not None else -1 for h in arcs.heads]
    heads[tree_root] = -1
    labels = [lab if lab is not None else "dep" for lab in arcs.labels]
    labels[tree_root] = "root"
    _validate_tree(heads)
    return DependencyTree(tokens, heads, labels)


def _attach_np_internal(
    tokens: list[TaggedToken], noun_phrases: list[NounPhrase], arcs: _ArcSet
) -> None:
    for np in noun_phrases:
        segment_heads = _np_segment_heads(tokens, np)
        primary = np.head
        for i in range(np.start, np.end):
            if i == primary or arcs.attached(i):
                continue
            token = tokens[i]
            local_head = _local_segment_head(i, segment_heads)
            if token.tag == "DT" or token.lower in {"what", "which"}:
                arcs.attach(i, local_head, "det")
            elif token.lower == "how":
                continue  # attaches to "many" below
            elif token.lower in {"many", "much"}:
                arcs.attach(i, local_head, "amod")
                if i > 0 and tokens[i - 1].lower == "how":
                    arcs.attach(i - 1, i, "advmod")
            elif token.tag in ADJ_TAGS:
                arcs.attach(i, local_head, "amod")
            elif token.tag in NOUN_TAGS and i < local_head:
                arcs.attach(i, local_head, "compound")
            elif token.lower == "of":
                nxt = _next_segment_head(i, segment_heads)
                arcs.attach(i, nxt if nxt is not None else local_head, "case")
            elif token.tag == "POS":
                # "'s" marks the possessor: case on the preceding head
                arcs.attach(i, _local_segment_head(i - 1, segment_heads),
                            "case")
        # of-chain / possessive links between segment heads
        if np.of_heads:
            if np.start <= np.of_heads[0] < np.head and \
                    tokens[np.of_heads[0] + 1].tag == "POS":
                # possessive: possessor -> nmod:poss of possessed head
                arcs.attach(np.of_heads[0], np.head, "nmod:poss")
                remaining = np.of_heads[1:]
            else:
                remaining = np.of_heads
            previous = np.head
            for chained in remaining:
                arcs.attach(chained, previous, "nmod")
                previous = chained


def _np_segment_heads(tokens: list[TaggedToken], np: NounPhrase) -> list[int]:
    """All segment heads of an NP in order (primary + of/poss chain)."""
    heads = sorted({np.head, *np.of_heads})
    return heads


def _local_segment_head(i: int, segment_heads: list[int]) -> int:
    """The segment head governing position ``i`` (nearest head >= i,
    else the last head)."""
    for head in segment_heads:
        if head >= i:
            return head
    return segment_heads[-1]


def _next_segment_head(i: int, segment_heads: list[int]) -> int | None:
    for head in segment_heads:
        if head > i:
            return head
    return None


def _attach_verb_group_internal(
    tokens: list[TaggedToken], group: VerbGroup, arcs: _ArcSet
) -> None:
    main = group.main
    for aux in group.auxiliaries:
        label = "aux:pass" if group.passive and tokens[aux].lemma == "be" \
            else "aux"
        arcs.attach(aux, main, label)
    previous_adverb: int | None = None
    for adv in group.adverbs:
        if tokens[adv].tag == "RBS" and previous_adverb is None:
            # "most frequently": most -> advmod of frequently
            nxt = adv + 1
            if nxt < len(tokens) and tokens[nxt].tag in {"RB", "JJ"}:
                arcs.attach(adv, nxt, "advmod")
                previous_adverb = adv
                continue
        arcs.attach(adv, main, "advmod")
        previous_adverb = adv
    for particle in group.particles:
        arcs.attach(particle, main, "compound:prt")


def _attach_complements(
    tokens: list[TaggedToken],
    noun_phrases: list[NounPhrase],
    np_by_head: dict[int, int],
    group: VerbGroup,
    arcs: _ArcSet,
    consumed_nps: set[int],
    all_groups: list[VerbGroup],
) -> None:
    """Attach NPs/PPs right after a verb group as its obj/obl."""
    group_starts = {g.start for g in all_groups if g is not group}
    position = group.end
    n = len(tokens)
    saw_complement = False
    while position < n:
        if position in group_starts or tokens[position].lower in RELATIVIZERS:
            break
        token = tokens[position]
        if token.tag == "IN":
            np = _np_starting_at(noun_phrases, position + 1)
            if np is None:
                break
            arcs.attach(token.index, np.head, "case")
            arcs.attach(np.head, group.main, "obl")
            consumed_nps.add(np_by_head[np.head])
            position = np.end
            saw_complement = True
        elif token.tag in NOUN_TAGS or token.tag == "DT" or \
                token.tag in ADJ_TAGS:
            if saw_complement:
                # a bare NP after a PP is not this verb's object (it
                # belongs to the enclosing clause, e.g. the "a cat" of
                # "Is the X that is sitting on the sofa a cat?")
                break
            np = _np_starting_at(noun_phrases, position)
            if np is None:
                break
            arcs.attach(np.head, group.main, "obj")
            consumed_nps.add(np_by_head[np.head])
            position = np.end
            saw_complement = True
        else:
            break


def _np_starting_at(noun_phrases: list[NounPhrase], position: int) -> NounPhrase | None:
    for np in noun_phrases:
        if np.start == position:
            return np
    return None


def _attach_main_clause(
    tokens: list[TaggedToken],
    noun_phrases: list[NounPhrase],
    np_by_head: dict[int, int],
    main_groups: list[VerbGroup],
    all_groups: list[VerbGroup],
    arcs: _ArcSet,
    consumed_nps: set[int],
) -> int:
    if not main_groups:
        raise ParseError("no main verb found in question")

    # do-support / copular questions start with a bare auxiliary group
    first = main_groups[0]
    content_groups = [
        g for g in main_groups
        if tokens[g.main].lemma not in _AUX_LEMMAS
    ]

    if content_groups:
        main = content_groups[0]
        root = main.main
        _attach_verb_group_internal(tokens, main, arcs)
        # clause-initial bare auxiliary ("Does ... appear") -> aux of root
        if first is not main and tokens[first.main].lemma in _AUX_LEMMAS:
            arcs.attach(first.main, root, "aux")
            for aux in first.auxiliaries:
                arcs.attach(aux, root, "aux")
        subject = _find_subject(tokens, noun_phrases, np_by_head, main,
                                arcs, consumed_nps)
        if subject is not None:
            label = "nsubj:pass" if main.passive else "nsubj"
            arcs.attach(subject, root, label)
        _attach_complements(tokens, noun_phrases, np_by_head, main, arcs,
                            consumed_nps, all_groups)
        # trailing conjunct main groups (rare) -> conj
        for extra in content_groups[1:]:
            _attach_verb_group_internal(tokens, extra, arcs)
            arcs.attach(extra.main, root, "conj")
            _attach_complements(tokens, noun_phrases, np_by_head, extra,
                                arcs, consumed_nps, all_groups)
        return root

    # no content verb in the main clause: copular or existential question
    cop = first.main
    _attach_verb_group_internal(tokens, first, arcs)
    after = cop + 1
    if after < len(tokens) and tokens[after].tag == "EX":
        # "Is there a dog near the fence?"
        arcs.attach(after, cop, "expl")
        np = _next_unconsumed_np(noun_phrases, np_by_head, after + 1,
                                 consumed_nps)
        if np is not None:
            arcs.attach(np.head, cop, "nsubj")
            consumed_nps.add(np_by_head[np.head])
        _attach_complements(
            tokens, noun_phrases, np_by_head,
            VerbGroup(first.start, np.end if np else after + 1, cop),
            arcs, consumed_nps, all_groups,
        )
        return cop

    # copular main clause: two word orders occur in the grammar —
    # subject-before-copula ("How many kinds of animals ARE near the
    # fence?") and inverted yes/no ("IS the animal ... a cat?")
    before = [
        (i, np) for i, np in enumerate(noun_phrases)
        if np.head < cop and i not in consumed_nps
        and not arcs.attached(np.head)
    ]
    if before:
        index, subj_np = before[-1]
        arcs.attach(subj_np.head, cop, "nsubj")
        consumed_nps.add(index)
        _attach_complements(tokens, noun_phrases, np_by_head,
                            VerbGroup(first.start, first.end, cop),
                            arcs, consumed_nps, all_groups)
        return cop
    subj_np = _next_unconsumed_np(noun_phrases, np_by_head, after,
                                  consumed_nps)
    if subj_np is None:
        raise ParseError("copular question without a subject")
    arcs.attach(subj_np.head, cop, "nsubj")
    consumed_nps.add(np_by_head[subj_np.head])
    attr_np = _next_unconsumed_np(noun_phrases, np_by_head, subj_np.end,
                                  consumed_nps)
    if attr_np is not None:
        arcs.attach(attr_np.head, cop, "attr")
        consumed_nps.add(np_by_head[attr_np.head])
    return cop


def _next_unconsumed_np(
    noun_phrases: list[NounPhrase],
    np_by_head: dict[int, int],
    position: int,
    consumed_nps: set[int],
) -> NounPhrase | None:
    """The first unconsumed NP starting at or after ``position``."""
    for np in noun_phrases:
        if np.start >= position and np_by_head[np.head] not in consumed_nps:
            return np
    return None


def _find_subject(
    tokens: list[TaggedToken],
    noun_phrases: list[NounPhrase],
    np_by_head: dict[int, int],
    group: VerbGroup,
    arcs: _ArcSet,
    consumed_nps: set[int],
) -> int | None:
    """The subject NP head: last unconsumed, unattached NP before the verb."""
    candidates = [
        (i, np) for i, np in enumerate(noun_phrases)
        if np.head < group.start and i not in consumed_nps
        and not arcs.attached(np.head)
    ]
    if not candidates:
        return None
    index, np = candidates[-1]
    consumed_nps.add(index)
    return np.head


def _validate_tree(heads: list[int]) -> None:
    roots = [i for i, h in enumerate(heads) if h == -1]
    if len(roots) != 1:
        raise ParseError(f"parse produced {len(roots)} roots, expected 1")
    # cycle check: walk up from each node
    for start in range(len(heads)):
        seen = set()
        current = start
        while current != -1:
            if current in seen:
                raise ParseError("parse produced a cycle")
            seen.add(current)
            current = heads[current]
