"""Deterministic word embeddings with injected synonym structure.

The paper's ``maxScore`` converts labels to word2vec embeddings [36]
and ranks by cosine similarity.  Offline, we build embeddings that are

* **deterministic** — a word's base vector is seeded from a stable hash
  of its spelling, so runs are reproducible across processes;
* **semantically structured** — words sharing a synonym cluster
  (:mod:`repro.nlp.semlex`) are pulled toward a common centroid, so
  cosine(dog, puppy) is high while cosine(dog, fence) stays near zero.

Phrases embed as the normalized mean of their word vectors, which is
exactly how the paper's maxScore treats multi-word edge labels.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.nlp.semlex import SYNONYM_CLUSTERS, cluster_of

DIM = 64

#: How strongly cluster members are pulled to their centroid.  At 0 the
#: space is pure hash noise; at 1 all synonyms coincide.  0.75 gives
#: within-cluster cosines around 0.8-0.95 and cross-cluster near 0.
CLUSTER_PULL = 0.75


def _hash_vector(word: str) -> np.ndarray:
    """Unit vector seeded from a stable digest of ``word``."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(DIM)
    return vec / np.linalg.norm(vec)


def _build_centroids() -> dict[tuple[str, ...], np.ndarray]:
    centroids = {}
    for cluster in SYNONYM_CLUSTERS:
        total = np.sum([_hash_vector(w) for w in cluster], axis=0)
        centroids[cluster] = total / np.linalg.norm(total)
    return centroids


_CENTROIDS = _build_centroids()
_CACHE: dict[str, np.ndarray] = {}


def word_vector(word: str) -> np.ndarray:
    """Embedding for a single (lowercased) word.

    Cluster membership is resolved through the surface form first and
    its lemmas second, so inflections ("hanging", "worn", "dogs") share
    their lemma's semantic neighborhood — without this, morphological
    variants of a predicate would be mutually dissimilar.
    """
    lowered = word.lower()
    cached = _CACHE.get(lowered)
    if cached is not None:
        return cached
    base = _hash_vector(lowered)
    cluster = cluster_of(lowered)
    if cluster is None:
        from repro.nlp.morphology import noun_singular, verb_lemma

        cluster = cluster_of(verb_lemma(lowered)) or \
            cluster_of(noun_singular(lowered))
    if cluster is not None:
        centroid = _CENTROIDS[cluster]
        blended = (1.0 - CLUSTER_PULL) * base + CLUSTER_PULL * centroid
        vec = blended / np.linalg.norm(blended)
    else:
        vec = base
    _CACHE[lowered] = vec
    return vec


def phrase_vector(phrase: str) -> np.ndarray:
    """Embedding for a phrase: normalized mean of word vectors.

    Averaging word-by-word (with lemma-aware word vectors) makes
    morphological variants of a phrase nearly identical:
    cosine("hang out with", "hanging out with") ~ 1.
    """
    lowered = phrase.lower().strip()
    if not lowered:
        raise ValueError("cannot embed an empty phrase")
    if " " not in lowered:
        return word_vector(lowered)
    vectors = [word_vector(w) for w in lowered.split()]
    mean = np.mean(vectors, axis=0)
    norm = np.linalg.norm(mean)
    if norm == 0:
        return vectors[0]
    return mean / norm


def cosine(a: str, b: str) -> float:
    """Cosine similarity of two words/phrases in [-1, 1]."""
    return float(np.dot(phrase_vector(a), phrase_vector(b)))


def max_score(query: str, candidates: list[str]) -> tuple[str | None, float]:
    """The paper's ``maxScore``: the candidate most similar to ``query``.

    Returns ``(best_candidate, similarity)``; ``(None, -inf)`` when the
    candidate list is empty.
    """
    if not candidates:
        return None, float("-inf")
    query_vec = phrase_vector(query)
    best, best_score = None, float("-inf")
    for candidate in candidates:
        score = float(np.dot(query_vec, phrase_vector(candidate)))
        if score > best_score:
            best, best_score = candidate, score
    return best, best_score


def rank_scores(query: str, candidates: list[str]) -> list[tuple[str, float]]:
    """All candidates with similarities, best first."""
    query_vec = phrase_vector(query)
    scored = [
        (c, float(np.dot(query_vec, phrase_vector(c)))) for c in candidates
    ]
    return sorted(scored, key=lambda cs: -cs[1])
