"""Deterministic word embeddings with injected synonym structure.

The paper's ``maxScore`` converts labels to word2vec embeddings [36]
and ranks by cosine similarity.  Offline, we build embeddings that are

* **deterministic** — a word's base vector is seeded from a stable hash
  of its spelling, so runs are reproducible across processes;
* **semantically structured** — words sharing a synonym cluster
  (:mod:`repro.nlp.semlex`) are pulled toward a common centroid, so
  cosine(dog, puppy) is high while cosine(dog, fence) stays near zero.

Phrases embed as the normalized mean of their word vectors, which is
exactly how the paper's maxScore treats multi-word edge labels.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any

import numpy as np

from repro import locks
from repro.nlp.semlex import SYNONYM_CLUSTERS, cluster_of

DIM = 64

#: How strongly cluster members are pulled to their centroid.  At 0 the
#: space is pure hash noise; at 1 all synonyms coincide.  0.75 gives
#: within-cluster cosines around 0.8-0.95 and cross-cluster near 0.
CLUSTER_PULL = 0.75


def _hash_vector(word: str) -> np.ndarray:
    """Unit vector seeded from a stable digest of ``word``."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(DIM)
    return vec / np.linalg.norm(vec)


def _build_centroids() -> dict[tuple[str, ...], np.ndarray]:
    centroids = {}
    for cluster in SYNONYM_CLUSTERS:
        total = np.sum([_hash_vector(w) for w in cluster], axis=0)
        centroids[cluster] = total / np.linalg.norm(total)
    return centroids


_CENTROIDS = _build_centroids()


class VectorCache:
    """Thread-safe word/phrase vector memo shared by every scorer.

    The old module-level dict was read-then-written from
    BatchExecutor worker threads with no lock; this class is the
    lock-disciplined replacement (RP003 applies).  Vectors are pure
    functions of their (lowercased) spelling, so the cache never goes
    stale — the lock only protects the dict itself, and duplicate
    computes race benignly: ``store`` keeps the first-stored array so
    every caller shares one canonical object per key.

    The lock is wrapped through :func:`repro.locks.wrap_lock` under
    the role ``nlp.embed_cache``; because this cache is built at
    import time (usually before ``repro sanitize`` installs its
    observer), every public entry point re-wraps the underlying raw
    lock when the active observer changes, so a runtime-installed
    sanitizer still sees every acquire.
    """

    def __init__(self) -> None:
        # lazy wrap: calling wrap_lock with no observer installed
        # would trigger SVQA_SANITIZE env activation at import time
        # (this cache is a module global); _refresh_lock wraps the
        # raw lock as soon as an observer actually exists
        self._raw = threading.Lock()
        self._observer: object | None = None
        self._lock: Any = self._raw
        self._refresh_lock()
        self._vectors: dict[tuple[str, str], np.ndarray] = {}

    def _refresh_lock(self) -> None:
        """Re-wrap the raw lock when the lock observer has changed.

        Benign under races: every wrapper delegates to the same raw
        lock, and the sanitizer keys critical sections by role name.
        """
        observer = locks.current()
        if observer is not self._observer:
            self._observer = observer
            self._lock = self._raw if observer is None else \
                locks.wrap_lock(self._raw, "nlp.embed_cache")

    def lookup(self, kind: str, key: str) -> np.ndarray | None:
        """The cached vector for ``(kind, key)``, or ``None``."""
        self._refresh_lock()
        with self._lock:
            locks.note_read("nlp.embed_cache", (kind, key))
            return self._vectors.get((kind, key))

    def store(self, kind: str, key: str, vector: np.ndarray) -> np.ndarray:
        """Memoize ``vector`` and return the canonical stored array
        (the first writer wins, so concurrent misses converge on one
        shared object)."""
        self._refresh_lock()
        with self._lock:
            locks.note_write("nlp.embed_cache", (kind, key))
            return self._vectors.setdefault((kind, key), vector)


_VECTORS = VectorCache()


def _compute_word_vector(lowered: str) -> np.ndarray:
    """The uncached word embedding (pure function of the spelling)."""
    base = _hash_vector(lowered)
    cluster = cluster_of(lowered)
    if cluster is None:
        from repro.nlp.morphology import noun_singular, verb_lemma

        cluster = cluster_of(verb_lemma(lowered)) or \
            cluster_of(noun_singular(lowered))
    if cluster is not None:
        centroid = _CENTROIDS[cluster]
        blended = (1.0 - CLUSTER_PULL) * base + CLUSTER_PULL * centroid
        return blended / np.linalg.norm(blended)
    return base


def word_vector(word: str) -> np.ndarray:
    """Embedding for a single (lowercased) word.

    Cluster membership is resolved through the surface form first and
    its lemmas second, so inflections ("hanging", "worn", "dogs") share
    their lemma's semantic neighborhood — without this, morphological
    variants of a predicate would be mutually dissimilar.
    """
    lowered = word.lower()
    cached = _VECTORS.lookup("word", lowered)
    if cached is not None:
        return cached
    return _VECTORS.store("word", lowered, _compute_word_vector(lowered))


def _compute_phrase_vector(lowered: str) -> np.ndarray:
    """The uncached multi-word phrase embedding."""
    vectors = [word_vector(w) for w in lowered.split()]
    mean = np.mean(vectors, axis=0)
    norm = np.linalg.norm(mean)
    if norm == 0:
        return vectors[0]
    return mean / norm


def phrase_vector(phrase: str) -> np.ndarray:
    """Embedding for a phrase: normalized mean of word vectors.

    Averaging word-by-word (with lemma-aware word vectors) makes
    morphological variants of a phrase nearly identical:
    cosine("hang out with", "hanging out with") ~ 1.  Memoized in the
    shared :class:`VectorCache`, so the ANN retrieval index and the
    linear reference scan read the exact same array per phrase.
    """
    lowered = phrase.lower().strip()
    if not lowered:
        raise ValueError("cannot embed an empty phrase")
    if " " not in lowered:
        return word_vector(lowered)
    cached = _VECTORS.lookup("phrase", lowered)
    if cached is not None:
        return cached
    return _VECTORS.store("phrase", lowered,
                          _compute_phrase_vector(lowered))


def cosine(a: str, b: str) -> float:
    """Cosine similarity of two words/phrases in [-1, 1]."""
    return float(np.dot(phrase_vector(a), phrase_vector(b)))


def max_score(query: str, candidates: list[str]) -> tuple[str | None, float]:
    """The paper's ``maxScore``: the candidate most similar to ``query``.

    Returns ``(best_candidate, similarity)``; ``(None, -inf)`` when the
    candidate list is empty.
    """
    if not candidates:
        return None, float("-inf")
    query_vec = phrase_vector(query)
    best, best_score = None, float("-inf")
    for candidate in candidates:
        score = float(np.dot(query_vec, phrase_vector(candidate)))
        if score > best_score:
            best, best_score = candidate, score
    return best, best_score


def rank_scores(query: str, candidates: list[str]) -> list[tuple[str, float]]:
    """All candidates with similarities, best first."""
    query_vec = phrase_vector(query)
    scored = [
        (c, float(np.dot(query_vec, phrase_vector(c)))) for c in candidates
    ]
    return sorted(scored, key=lambda cs: -cs[1])
