"""Seeded, deterministic ANN index over the embedding space.

PR 5 made vertex label matching sublinear; this module does the same
for the *embedding* lookups left on the hot path
(``_filter_by_predicate``, ``_apply_constraint``,
``_match_possessive``), each of which charged ``embed_score`` once
per candidate label per clause per query.  Two structures cooperate:

* a **score memo** keyed ``(query, candidate)`` (both lowercased):
  cosine scores are pure functions of the two spellings, so a pair
  scored once is scored forever.  The first computation of a pair
  charges ``embed_score`` exactly like the linear scan did; every
  repeat charges the much cheaper ``ann_probe``.  Across a workload
  the same (predicate, edge-label) pairs recur constantly, which is
  where the aggregate ``embed_score`` drop comes from;
* **LSH band signatures** (random-hyperplane sign bits, grouped into
  bands) over the indexed labels, serving the approximate
  :meth:`EmbeddingANNIndex.neighbors` probe used by the degraded-mode
  retrieval fallback.

Determinism rules:

* the hyperplanes are drawn from ``np.random.default_rng`` with a
  literal seed (RP002) at construction — identical across processes;
* :meth:`~EmbeddingANNIndex.rank` and
  :meth:`~EmbeddingANNIndex.best` are **extensionally equal** to
  :func:`repro.nlp.embeddings.rank_scores` /
  :func:`repro.nlp.embeddings.max_score`: scores are produced by the
  byte-identical float expression, assembled in caller candidate
  order, and tie-broken by the same stable sort / first-strict-greater
  scan — the fuzz suite asserts equality outright;
* ``neighbors`` output is ordered by ``(-score, insertion order)``,
  with insertion order maintained exactly like
  :class:`~repro.graph.candidates.VertexCandidateIndex`.

Membership is maintained incrementally by
:class:`~repro.graph.model.Graph` on ``add_edge`` / ``remove_edge``
behind the graph's monotone epoch counter, with refcounts so a label
retires exactly when its last edge does; retiring a label also purges
its memo rows (sound: scores are pure, so a re-added label recomputes
identical floats).  The index itself never touches the
:class:`~repro.simtime.SimClock` — call sites charge the returned
``(fresh, probes)`` counts, so the ``SVQAConfig.retrieval=None`` off
path stays bit-identical.

The score memo is read and written from BatchExecutor worker threads,
so it lives behind a :func:`repro.locks.wrap_lock` lock (role
``retrieval.ann``).  Scoring calls :func:`phrase_vector`, which takes
the embed-cache lock — those computations happen strictly *outside*
this index's critical sections (two-phase: snapshot misses under the
lock, compute unlocked, store under the lock), so no foreign lock is
ever acquired under ours.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro import locks
from repro.nlp.embeddings import DIM, phrase_vector

#: literal hyperplane seed (RP002: every RNG is seeded and auditable)
ANN_SEED = 20240612

#: sign-bit hyperplanes per signature; grouped into ``ANN_BANDS``
#: bands of ``ANN_PLANES // ANN_BANDS`` bits each.  24/4 gives 6-bit
#: band keys: coarse enough to recall morphological variants, fine
#: enough that a band bucket holds a small fraction of the labels.
ANN_PLANES = 24
ANN_BANDS = 4

#: sentinel distinguishing "absent" from a stored ``None`` bucket value
_MISSING = object()


class EmbeddingANNIndex:
    """Refcounted label index + exact score memo over embeddings.

    Mutate membership only through the
    :class:`~repro.graph.model.Graph` mutation API (``add_edge`` /
    ``remove_edge``), which refcounts labels so a label leaves the
    index exactly when its last edge does — the
    :class:`~repro.graph.candidates.VertexCandidateIndex` invariant.
    """

    def __init__(self, seed: int = ANN_SEED, planes: int = ANN_PLANES,
                 bands: int = ANN_BANDS) -> None:
        if planes % bands:
            raise ValueError("planes must divide evenly into bands")
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal((planes, DIM))
        self._bands = bands
        self._per_band = planes // bands
        self._refs: dict[str, int] = {}
        self._order: dict[str, int] = {}
        self._next_position = 0
        #: labels admitted but not yet signed (signatures need
        #: ``phrase_vector``, computed lazily outside the lock)
        self._unsigned: dict[str, None] = {}
        self._signatures: dict[str, tuple[int, ...]] = {}
        self._buckets: dict[tuple[int, int], dict[str, None]] = {}
        self._scores: dict[tuple[str, str], float] = {}
        # lazy wrap: calling wrap_lock with no observer installed
        # would trigger SVQA_SANITIZE env activation at construction
        # time (e.g. during test collection); _refresh_lock wraps the
        # raw lock as soon as an observer actually exists
        self._raw = threading.Lock()
        self._observer: object | None = None
        self._lock: Any = self._raw
        self._refresh_lock()

    def _refresh_lock(self) -> None:
        """Re-wrap the raw lock when the lock observer has changed.

        The index is often built before ``repro sanitize`` installs
        its observer; re-wrapping keeps a runtime-installed sanitizer
        seeing every acquire (wrappers share one raw lock, and the
        sanitizer keys critical sections by role name).
        """
        observer = locks.current()
        if observer is not self._observer:
            self._observer = observer
            self._lock = self._raw if observer is None else \
                locks.wrap_lock(self._raw, "retrieval.ann")

    # ------------------------------------------------------------------
    # maintenance (Graph mutation API only)
    # ------------------------------------------------------------------
    def add_label(self, label: str) -> None:
        """Register one more edge carrying ``label``."""
        self._refresh_lock()
        with self._lock:
            locks.note_write("retrieval.ann", label)
            count = self._refs.get(label, 0)
            self._refs[label] = count + 1
            if count:
                return
            self._order[label] = self._next_position
            self._next_position += 1
            self._unsigned[label] = None

    def remove_label(self, label: str) -> None:
        """Unregister one edge carrying ``label``; the label retires
        from signatures, buckets, and the score memo when its last
        edge goes."""
        self._refresh_lock()
        with self._lock:
            locks.note_write("retrieval.ann", label)
            count = self._refs.get(label)
            if count is None:
                raise KeyError(f"label {label!r} is not indexed")
            if count > 1:
                self._refs[label] = count - 1
                return
            del self._refs[label]
            del self._order[label]
            self._unsigned.pop(label, None)
            signature = self._signatures.pop(label, None)
            if signature is not None:
                for band, key in enumerate(signature):
                    bucket = self._buckets[(band, key)]
                    del bucket[label]
                    if not bucket:
                        del self._buckets[(band, key)]
            lowered = label.lower()
            stale = [pair for pair in self._scores if pair[1] == lowered]
            for pair in stale:
                del self._scores[pair]

    # ------------------------------------------------------------------
    # exact scoring (extensionally equal to the linear scan)
    # ------------------------------------------------------------------
    def rank(self, query: str,
             candidates: list[str]) -> tuple[list[tuple[str, float]],
                                             int, int]:
        """All candidates with similarities, best first — the exact
        output of :func:`~repro.nlp.embeddings.rank_scores` — plus
        ``(fresh, probes)``: how many scores were computed this call
        (charge ``embed_score``) vs. served from the memo (charge
        ``ann_probe``)."""
        query_vec = phrase_vector(query)
        scores, fresh, probes = self._score_all(query, query_vec,
                                                candidates)
        scored = list(zip(candidates, scores))
        return sorted(scored, key=lambda cs: -cs[1]), fresh, probes

    def best(self, query: str,
             candidates: list[str]) -> tuple[str | None, float,
                                             int, int]:
        """The candidate most similar to ``query`` — the exact output
        of :func:`~repro.nlp.embeddings.max_score` (``(None, -inf)``
        on an empty candidate list) — plus ``(fresh, probes)``."""
        if not candidates:
            return None, float("-inf"), 0, 0
        query_vec = phrase_vector(query)
        scores, fresh, probes = self._score_all(query, query_vec,
                                                candidates)
        best, best_score = None, float("-inf")
        for candidate, score in zip(candidates, scores):
            if score > best_score:
                best, best_score = candidate, score
        return best, best_score, fresh, probes

    def _score_all(self, query: str, query_vec: np.ndarray,
                   candidates: list[str]) -> tuple[list[float],
                                                   int, int]:
        """Scores aligned with ``candidates``, via the memo.

        Two-phase with respect to the index lock: snapshot hits and
        misses under the lock, compute the misses *unlocked* (scoring
        acquires the embed-cache lock), then store under the lock,
        keeping whichever float landed first (they are identical:
        scores are pure functions of the spellings).
        """
        lowered_query = query.lower()
        keys = [(lowered_query, c.lower()) for c in candidates]
        self._refresh_lock()
        fresh = 0
        probes = 0
        known: dict[tuple[str, str], float] = {}
        with self._lock:
            for key in keys:
                locks.note_read("retrieval.ann", key)
                cached = self._scores.get(key)
                if cached is None:
                    fresh += 1
                else:
                    probes += 1
                    known[key] = cached
        computed: dict[tuple[str, str], float] = {}
        for key, candidate in zip(keys, candidates):
            if key in known or key in computed:
                continue
            computed[key] = float(
                np.dot(query_vec, phrase_vector(candidate))
            )
        if computed:
            with self._lock:
                for key in computed:
                    locks.note_write("retrieval.ann", key)
                    known[key] = self._scores.setdefault(
                        key, computed[key]
                    )
        return [known[key] for key in keys], fresh, probes

    # ------------------------------------------------------------------
    # approximate neighborhood probe (LSH bands)
    # ------------------------------------------------------------------
    def neighbors(self, query: str,
                  limit: int = 8) -> list[tuple[str, float]]:
        """Indexed labels sharing at least one LSH band with
        ``query``, exactly scored, ordered ``(-score, insertion
        order)``, truncated to ``limit``.

        Approximate by design: a label landing in no shared band is
        simply not returned (callers fall back), but any label
        returned carries its true cosine score.
        """
        query_vec = phrase_vector(query)
        self._ensure_signatures()
        signature = self._signature_of(query_vec)
        self._refresh_lock()
        with self._lock:
            locks.note_read("retrieval.ann")
            seen: dict[str, None] = {}
            for band, key in enumerate(signature):
                for label in self._buckets.get((band, key), ()):
                    seen.setdefault(label, None)
            order = {label: self._order[label] for label in seen}
        if not seen:
            return []
        candidates = sorted(seen, key=order.__getitem__)
        ranked, _, _ = self.rank(query, candidates)
        return ranked[:limit]

    def _ensure_signatures(self) -> None:
        """Sign any labels admitted since the last probe.

        Two-phase like :meth:`_score_all`: signatures need
        ``phrase_vector``, so they are computed with no lock held.
        """
        with self._lock:
            locks.note_read("retrieval.ann")
            pending = list(self._unsigned)
        if not pending:
            return
        signed = [
            (label, self._signature_of(phrase_vector(label)))
            for label in pending
        ]
        with self._lock:
            for label, signature in signed:
                locks.note_write("retrieval.ann", label)
                if self._unsigned.pop(label, _MISSING) is _MISSING:
                    continue  # retired (or re-signed) between phases
                self._signatures[label] = signature
                for band, key in enumerate(signature):
                    self._buckets.setdefault((band, key), {})[label] = \
                        None

    def _signature_of(self, vector: np.ndarray) -> tuple[int, ...]:
        """The band keys of ``vector``: each band's hyperplane sign
        bits packed into one int."""
        bits = self._planes @ vector >= 0.0
        keys = []
        for band in range(self._bands):
            key = 0
            for bit in bits[band * self._per_band:
                            (band + 1) * self._per_band]:
                key = (key << 1) | int(bit)
            keys.append(key)
        return tuple(keys)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Distinct labels currently indexed."""
        return len(self._refs)

    def __contains__(self, label: str) -> bool:
        """Whether ``label`` is currently indexed."""
        return label in self._refs

    def count(self, label: str) -> int:
        """Number of edges currently carrying ``label``."""
        return self._refs.get(label, 0)

    def labels(self) -> list[str]:
        """Every indexed label, in graph insertion order."""
        self._refresh_lock()
        with self._lock:
            locks.note_read("retrieval.ann")
            return sorted(self._refs, key=self._order.__getitem__)

    def stats(self) -> dict[str, int]:
        """Deterministic structural counters for ``repro retrieval``."""
        self._refresh_lock()
        with self._lock:
            locks.note_read("retrieval.ann")
            sizes = [len(bucket) for bucket in self._buckets.values()]
            return {
                "labels": len(self._refs),
                "signed": len(self._signatures),
                "pending": len(self._unsigned),
                "bands": self._bands,
                "planes": self._planes.shape[0],
                "buckets": len(self._buckets),
                "largest_bucket": max(sizes, default=0),
                "memo_entries": len(self._scores),
            }


__all__ = [
    "ANN_BANDS",
    "ANN_PLANES",
    "ANN_SEED",
    "EmbeddingANNIndex",
]
