"""Computational-linguistics substrate: tokenizer, POS tagger,
dependency parser, morphology, edit distance, and embeddings.
"""

from repro.nlp.depparse import DependencyTree, parse, parse_tagged
from repro.nlp.dword import levenshtein, normalized_levenshtein, within_distance
from repro.nlp.embeddings import cosine, max_score, phrase_vector, rank_scores, word_vector
from repro.nlp.morphology import (
    gerund,
    noun_plural,
    noun_singular,
    normalize_predicate,
    past_participle,
    present_3sg,
    verb_lemma,
)
from repro.nlp.pos import TaggedToken, tag, tag_tokens, unknown_word_report
from repro.nlp.semlex import (
    HYPERNYMS,
    SYNONYM_CLUSTERS,
    are_synonyms,
    cluster_of,
    hypernym_chain,
    hyponyms_of,
    is_kind_of,
)
from repro.nlp.tokenize import Token, detokenize, tokenize

__all__ = [
    "DependencyTree",
    "HYPERNYMS",
    "SYNONYM_CLUSTERS",
    "TaggedToken",
    "Token",
    "are_synonyms",
    "cluster_of",
    "cosine",
    "detokenize",
    "gerund",
    "hypernym_chain",
    "hyponyms_of",
    "is_kind_of",
    "levenshtein",
    "max_score",
    "normalize_predicate",
    "normalized_levenshtein",
    "noun_plural",
    "noun_singular",
    "parse",
    "parse_tagged",
    "past_participle",
    "phrase_vector",
    "present_3sg",
    "rank_scores",
    "tag",
    "tag_tokens",
    "tokenize",
    "unknown_word_report",
    "verb_lemma",
    "within_distance",
    "word_vector",
]
