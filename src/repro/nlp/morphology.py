"""Morphology: lemmatization, noun number, and verb (de)inflection.

§IV-B of the paper normalizes extracted predicates — e.g. the passive
"are worn" becomes the simple present "wear" before entering the SPOC —
so the executor can match predicate labels in the merged graph whose
edges are stored in base form ("wearing"/"wear" variants collapse).
"""

from __future__ import annotations

from repro.nlp.lexicon import (
    AUX_DO,
    AUX_HAVE,
    BE_FORMS,
    NOUN_TABLE,
    VERB_TABLE,
    noun_form_index,
    verb_form_index,
)


def _full_verb_index() -> dict[str, tuple[str, str]]:
    index = verb_form_index()
    for form, tag in BE_FORMS.items():
        index.setdefault(form, (tag, "be"))
    for form, tag in AUX_DO.items():
        index.setdefault(form, (tag, "do"))
    for form, tag in AUX_HAVE.items():
        index.setdefault(form, (tag, "have"))
    return index


_VERB_INDEX = _full_verb_index()
_NOUN_INDEX = noun_form_index()
_PLURAL_TO_SINGULAR = {
    plural: singular for singular, plural in NOUN_TABLE.items()
}


def verb_lemma(word: str) -> str:
    """Base form of a verb (``worn`` -> ``wear``); unknown words get a
    suffix-stripping guess."""
    lowered = word.lower()
    if lowered in _VERB_INDEX:
        return _VERB_INDEX[lowered][1]
    return _strip_verb_suffix(lowered)


def _strip_verb_suffix(word: str) -> str:
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("ing") and len(word) > 4:
        stem = word[:-3]
        return _undouble(stem)
    if word.endswith("ed") and len(word) > 3:
        stem = word[:-2]
        return _undouble(stem)
    if word.endswith("es") and len(word) > 3:
        return word[:-2]
    if word.endswith("s") and len(word) > 2:
        return word[:-1]
    return word


def _undouble(stem: str) -> str:
    """sitt -> sit, runn -> run; leave 'watch' style stems alone."""
    if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in "aeiou":
        return stem[:-1]
    return stem


def noun_singular(word: str) -> str:
    """Singular form of a noun (``animals`` -> ``animal``)."""
    lowered = word.lower()
    if lowered in _PLURAL_TO_SINGULAR:
        return _PLURAL_TO_SINGULAR[lowered]
    if lowered in NOUN_TABLE:
        return lowered
    if lowered.endswith("ies") and len(lowered) > 4:
        return lowered[:-3] + "y"
    if lowered.endswith(("ches", "shes", "sses", "xes")):
        return lowered[:-2]
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 2:
        return lowered[:-1]
    return lowered


def noun_plural(word: str) -> str:
    """Plural form of a noun (``man`` -> ``men``)."""
    lowered = word.lower()
    if lowered in NOUN_TABLE:
        return NOUN_TABLE[lowered]
    if lowered.endswith(("ch", "sh", "ss", "x", "s")):
        return lowered + "es"
    if lowered.endswith("y") and len(lowered) > 1 and lowered[-2] not in "aeiou":
        return lowered[:-1] + "ies"
    return lowered + "s"


def is_participle(word: str) -> bool:
    """Whether ``word`` is a known past participle (VBN)."""
    lowered = word.lower()
    entry = _VERB_INDEX.get(lowered)
    if entry is not None:
        return entry[0] == "VBN"
    return lowered.endswith(("ed", "en"))


def is_gerund(word: str) -> bool:
    """Whether ``word`` is a known present participle (VBG)."""
    lowered = word.lower()
    entry = _VERB_INDEX.get(lowered)
    if entry is not None:
        return entry[0] == "VBG"
    return lowered.endswith("ing")


def present_3sg(lemma: str) -> str:
    """Simple-present third-singular of a verb lemma (``wear`` -> ``wears``)."""
    lowered = lemma.lower()
    if lowered in VERB_TABLE:
        return VERB_TABLE[lowered][0]
    if lowered.endswith(("ch", "sh", "ss", "x", "o")):
        return lowered + "es"
    if lowered.endswith("y") and len(lowered) > 1 and lowered[-2] not in "aeiou":
        return lowered[:-1] + "ies"
    return lowered + "s"


def gerund(lemma: str) -> str:
    """Present participle of a verb lemma (``sit`` -> ``sitting``)."""
    lowered = lemma.lower()
    if lowered in VERB_TABLE:
        return VERB_TABLE[lowered][2]
    if lowered.endswith("e") and not lowered.endswith("ee"):
        return lowered[:-1] + "ing"
    return lowered + "ing"


def past_participle(lemma: str) -> str:
    """Past participle of a verb lemma (``wear`` -> ``worn``)."""
    lowered = lemma.lower()
    if lowered in VERB_TABLE:
        return VERB_TABLE[lowered][3]
    if lowered.endswith("e"):
        return lowered + "d"
    return lowered + "ed"


def normalize_predicate(words: list[str]) -> str:
    """Normalize a predicate word group to its active base form.

    This is the §IV-B voice normalization: ``["are", "worn"]`` becomes
    ``"wear"``; particles and prepositions that are part of a phrasal
    predicate are kept (``["is", "hanging", "out"]`` -> ``"hang out"``).

    >>> normalize_predicate(["are", "worn"])
    'wear'
    >>> normalize_predicate(["is", "hanging", "out", "with"])
    'hang out with'
    """
    content: list[str] = []
    for word in words:
        lowered = word.lower()
        entry = _VERB_INDEX.get(lowered)
        if entry is not None and entry[1] in {"be", "do", "have"}:
            continue  # auxiliary — drop
        if entry is not None:
            content.append(entry[1])
        elif lowered in {"not", "n't"}:
            continue
        elif _looks_like_verb(lowered) and not content:
            content.append(_strip_verb_suffix(lowered))
        else:
            content.append(lowered)
    if not content:
        return "be"
    return " ".join(content)


def _looks_like_verb(word: str) -> bool:
    return word.endswith(("ing", "ed", "en", "s"))
