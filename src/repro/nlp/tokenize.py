"""Tokenizer for English questions.

Splits on whitespace, detaches sentence-final punctuation, splits
possessive clitics (``Potter's`` -> ``Potter`` + ``'s``) and common
contractions.  Token offsets are preserved so downstream components can
refer back to the original question text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import TokenizationError

_CONTRACTIONS = {
    "can't": ("can", "n't"),
    "won't": ("will", "n't"),
    "don't": ("do", "n't"),
    "doesn't": ("does", "n't"),
    "isn't": ("is", "n't"),
    "aren't": ("are", "n't"),
    "wasn't": ("was", "n't"),
    "weren't": ("were", "n't"),
    "what's": ("what", "'s"),
    "who's": ("who", "'s"),
    "there's": ("there", "'s"),
    "it's": ("it", "'s"),
}

_WORD_RE = re.compile(r"[A-Za-z][A-Za-z\-]*|\d+|[^\sA-Za-z\d]")


@dataclass(frozen=True)
class Token:
    """A single token with its position in the token sequence."""

    index: int
    text: str

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        return bool(self.text) and (self.text[0].isalpha() or self.text.isdigit())

    @property
    def is_punct(self) -> bool:
        return not self.is_word


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of :class:`Token`.

    >>> [t.text for t in tokenize("Harry Potter's girlfriend?")]
    ['Harry', 'Potter', "'s", 'girlfriend', '?']
    """
    if not isinstance(text, str):
        raise TokenizationError(f"expected str, got {type(text).__name__}")
    if not text.strip():
        raise TokenizationError("cannot tokenize empty text")

    pieces: list[str] = []
    for raw in text.split():
        lowered = raw.lower()
        # strip trailing sentence punctuation first so contractions match
        trailing: list[str] = []
        while raw and raw[-1] in ".?!,;:":
            trailing.append(raw[-1])
            raw = raw[:-1]
            lowered = lowered[:-1]
        if lowered in _CONTRACTIONS:
            head, tail = _CONTRACTIONS[lowered]
            # preserve original casing of the head where possible
            pieces.append(raw[: len(head)] if len(raw) >= len(head) else head)
            pieces.append(tail)
        elif lowered.endswith("'s"):
            pieces.append(raw[:-2])
            pieces.append("'s")
        elif raw:
            pieces.extend(_WORD_RE.findall(raw))
        pieces.extend(reversed(trailing))

    tokens = [Token(i, piece) for i, piece in enumerate(pieces) if piece]
    if not tokens:
        raise TokenizationError(f"no tokens found in {text!r}")
    return tokens


def detokenize(tokens: list[Token]) -> str:
    """Rebuild readable text from tokens (clitics and punctuation reattach)."""
    parts: list[str] = []
    for token in tokens:
        if parts and (token.text in {"'s", "n't"} or token.is_punct):
            parts[-1] += token.text
            continue
        parts.append(token.text)
    return " ".join(parts)
