"""Part-of-speech tagger over the Penn Treebank tagset.

The Stanford POS tagger the paper uses (Eq. 4) is a feature-rich
discriminative model; this substitution is a deterministic three-stage
tagger in the lineage of Brill (1992):

1. **lexicon lookup** — closed classes and the domain vocabulary,
2. **suffix heuristics** — morphological guesses for unknown words,
3. **contextual rules** — a small Brill-style rule cascade that fixes
   tags from neighbors (e.g. a participle after a *be* form is VBN;
   a word after a determiner that got a verb tag becomes NN).

Unknown words that look foreign (no recognizable English suffix, not
capitalized, latinate ending) are tagged ``FW`` — reproducing the
failure mode of Fig. 8(a), where "canis" is tagged FW and breaks the
downstream parse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.lexicon import build_lexicon
from repro.nlp.tokenize import Token, tokenize

_LEXICON = build_lexicon()

#: tags that count as verbal for contextual rules
VERB_TAGS = {"VB", "VBZ", "VBP", "VBG", "VBN", "VBD", "MD"}
NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS"}

_FOREIGN_ENDINGS = ("is", "us", "um", "ae", "ii", "ix", "ox")


@dataclass(frozen=True)
class TaggedToken:
    """A token with its POS tag and lemma."""

    index: int
    text: str
    tag: str
    lemma: str

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_verb(self) -> bool:
        return self.tag in VERB_TAGS

    @property
    def is_noun(self) -> bool:
        return self.tag in NOUN_TAGS

    @property
    def is_punct(self) -> bool:
        return self.tag in {".", ",", ":"}


def tag_tokens(tokens: list[Token]) -> list[TaggedToken]:
    """Tag a token sequence."""
    initial = [_initial_tag(token, position) for position, token in
               enumerate(tokens)]
    return _apply_contextual_rules(initial)


def tag(text: str) -> list[TaggedToken]:
    """Tokenize and tag ``text`` in one call.

    >>> [t.tag for t in tag("the dog runs")]
    ['DT', 'NN', 'VBZ']
    """
    return tag_tokens(tokenize(text))


def _initial_tag(token: Token, position: int) -> TaggedToken:
    word = token.text
    lowered = token.lower

    if lowered in _LEXICON:
        tag_, lemma = _LEXICON[lowered]
        return TaggedToken(token.index, word, tag_, lemma)
    if token.is_punct:
        return TaggedToken(token.index, word, word if word in ".,:" else ".",
                           word)
    if word.isdigit():
        return TaggedToken(token.index, word, "CD", word)
    # proper noun: capitalized anywhere but utterance start; at start we
    # still call it NNP if it is not in the lexicon at all (names like
    # "Harry" only ever appear capitalized)
    if word[0].isupper():
        return TaggedToken(token.index, word, "NNP", word)
    return _suffix_guess(token)


def _suffix_guess(token: Token) -> TaggedToken:
    word = token.lower
    if word.endswith("ing") and len(word) > 4:
        return TaggedToken(token.index, token.text, "VBG", word)
    if word.endswith("ed") and len(word) > 3:
        return TaggedToken(token.index, token.text, "VBN", word)
    if word.endswith("ly") and len(word) > 3:
        return TaggedToken(token.index, token.text, "RB", word)
    if word.endswith(("able", "ible", "ful", "ous", "ish", "ive")):
        return TaggedToken(token.index, token.text, "JJ", word)
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3 \
            and not word.endswith(_FOREIGN_ENDINGS):
        return TaggedToken(token.index, token.text, "NNS", word[:-1])
    if word.endswith(_FOREIGN_ENDINGS):
        # latinate unknown word -> FW (the Fig. 8a failure mode)
        return TaggedToken(token.index, token.text, "FW", word)
    return TaggedToken(token.index, token.text, "NN", word)


def _apply_contextual_rules(tagged: list[TaggedToken]) -> list[TaggedToken]:
    """Brill-style contextual repairs, applied left to right."""
    result = list(tagged)

    def retag(i: int, new_tag: str, lemma: str | None = None) -> None:
        old = result[i]
        result[i] = TaggedToken(old.index, old.text, new_tag,
                                lemma if lemma is not None else old.lemma)

    for i, current in enumerate(result):
        prev = result[i - 1] if i > 0 else None
        nxt = result[i + 1] if i + 1 < len(result) else None

        # DT + base/plural verb tag -> the word is a noun ("the watch",
        # "a park"); a determiner can never precede a finite verb.
        if (prev is not None and prev.tag == "DT"
                and current.tag in {"VB", "VBP"}):
            retag(i, "NN")
        # be + VBD that could be VBN -> VBN ("was held")
        elif (prev is not None and prev.lemma == "be"
              and current.tag == "VBD"):
            retag(i, "VBN")
        # do/does/did + VBZ/VBP stays; do + NN that is also a verb form
        # is out of scope for the grammar.
        # WDT/WP "that" vs DT "that": "that" directly before a finite verb
        # or auxiliary is a relative pronoun
        if (current.lower == "that" and nxt is not None
                and (nxt.tag in VERB_TAGS or nxt.lemma == "be")):
            retag(i, "WDT")
        # "how many" -> many is JJ (it is in ADJECTIVES already); "how"
        # stays WRB.
        # superlative RBS + JJ -> keep; RBS + RB ("most frequently") keep.

    return result


def unknown_word_report(tagged: list[TaggedToken]) -> list[TaggedToken]:
    """Tokens tagged FW — surfaced to callers for error analysis."""
    return [t for t in tagged if t.tag == "FW"]
