"""Levenshtein edit distance, plain and normalized.

``matchVertex`` in Algorithm 3 finds merged-graph vertices "whose
distance is less than the empirical threshold" using the normalized
Levenshtein distance of Yujian & Bo (2007) [37].
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs).

    O(len(a) * len(b)) time, O(min(len(a), len(b))) space.
    """
    if a == b:
        return 0
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost  # substitution
            ))
        previous = current
    return previous[-1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Normalized edit distance in [0, 1].

    Uses the Yujian-Bo normalization ``2*d / (len(a) + len(b) + d)``,
    which (unlike d / max-len) remains a metric.
    Identical strings give 0.0; completely different strings approach 1.
    """
    if a == b:
        return 0.0
    distance = levenshtein(a, b)
    return (2 * distance) / (len(a) + len(b) + distance)


def within_distance(a: str, b: str, threshold: float) -> bool:
    """Whether the normalized distance between ``a`` and ``b`` is below
    ``threshold`` (case-insensitive, as labels are matched in the paper).
    """
    return normalized_levenshtein(a.lower(), b.lower()) < threshold
