"""Exp-3 / Table V — the impact of the SGG model on SVQA accuracy.

Paper:
    VTransE   Original  3.7/5.1/6.1    72.2%
              TDE       5.8/8.1/9.9    84.1%
    VCTree    Original  4.2/5.8/6.9    74.1%
              TDE       6.3/8.6/10.5   86.3%
    Motifs    Original  4.2/5.3/6.9    75.4%
              TDE       6.9/9.5/11.3   87.2%

Absolute mR@K differs (our predicate vocabulary has 28 classes and the
appearance evidence is synthetic), but the orderings must hold:
Motifs >= VCTree >= VTransE, TDE lifts every model's mR@K, and SVQA
accuracy correlates positively with SGG quality.
"""

import pytest

from repro.core import SVQA, SVQAConfig
from repro.eval.harness import evaluate, format_table, percentage
from repro.synth import SceneGenerator
from repro.vision import (
    MOTIFNET,
    RelationPredictor,
    SGGConfig,
    SGGPipeline,
    SimulatedDetector,
    VCTREE,
    VTRANSE,
    mean_recall_at,
)

#: scenes used for the mR@K sweep (a subset keeps the bench fast)
SGG_SCENES = 250

MODELS = (("vtranse", VTRANSE), ("vctree", VCTREE),
          ("neural-motifs", MOTIFNET))


@pytest.fixture(scope="module")
def sgg_scenes():
    return SceneGenerator(seed=97).generate_pool(SGG_SCENES)


@pytest.fixture(scope="module")
def accuracy_dataset():
    from repro.dataset.mvqa import build_mvqa

    return build_mvqa(seed=11, pool_size=2_500, image_count=800)


def run_sweep(sgg_scenes, accuracy_dataset):
    detector = SimulatedDetector()
    rows = {}
    for name, spec in MODELS:
        for use_tde in (False, True):
            pipeline = SGGPipeline(detector, RelationPredictor(spec),
                                   SGGConfig(use_tde=use_tde))
            results = pipeline.run_many(sgg_scenes)
            recalls = mean_recall_at(results, sgg_scenes,
                                     ks=(20, 50, 100))
            svqa = SVQA(accuracy_dataset.scenes, accuracy_dataset.kg,
                        SVQAConfig(relation_model=name, use_tde=use_tde))
            svqa.build()
            accuracy = evaluate(
                name, accuracy_dataset.questions, svqa.answer_many,
                lambda: svqa.elapsed,
            ).report.overall
            rows[(name, use_tde)] = (recalls, accuracy)
    return rows


def test_table5_sgg_impact(sgg_scenes, accuracy_dataset, benchmark):
    rows = benchmark.pedantic(run_sweep,
                              args=(sgg_scenes, accuracy_dataset),
                              rounds=1, iterations=1)
    printable = []
    for name, _ in MODELS:
        for use_tde in (False, True):
            recalls, accuracy = rows[(name, use_tde)]
            printable.append([
                name, "TDE" if use_tde else "Original",
                " / ".join(f"{100 * recalls[k]:.1f}" for k in (20, 50, 100)),
                percentage(accuracy),
            ])
    print()
    print(format_table(
        ["Model", "Method", "SGG mR@20/50/100", "SVQA accuracy"],
        printable, title="Table V — relation prediction vs SVQA accuracy",
    ))

    # --- TDE improves every model's mR@K and SVQA accuracy
    for name, _ in MODELS:
        original_mr, original_acc = rows[(name, False)]
        tde_mr, tde_acc = rows[(name, True)]
        for k in (20, 50, 100):
            assert tde_mr[k] > original_mr[k]
        assert tde_acc >= original_acc

    # --- model ordering on the biased path: Motifs >= VCTree >= VTransE
    mr = {name: rows[(name, False)][0][50] for name, _ in MODELS}
    assert mr["neural-motifs"] >= mr["vctree"] >= mr["vtranse"]

    # --- SGG quality correlates with system accuracy: best model with
    # TDE beats worst model without
    assert rows[("neural-motifs", True)][1] > rows[("vtranse", False)][1]
