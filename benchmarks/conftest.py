"""Shared session-scoped fixtures for the benchmark suite.

The expensive artifacts — the MVQA dataset, the modified VQAv2, and
the built SVQA systems — are constructed once per pytest session and
shared by every benchmark file.
"""

from __future__ import annotations

import pytest

from repro.core import SVQA
from repro.dataset.mvqa import build_mvqa
from repro.dataset.vqa2 import build_modified_vqa2


@pytest.fixture(scope="session")
def mvqa_dataset():
    """The full MVQA build (13,808-scene pool -> 4,233 images, 100 QA)."""
    return build_mvqa()


@pytest.fixture(scope="session")
def mvqa_svqa(mvqa_dataset):
    """SVQA built over the full MVQA image base."""
    svqa = SVQA(mvqa_dataset.scenes, mvqa_dataset.kg)
    svqa.build()
    return svqa


@pytest.fixture(scope="session")
def mvqa_query_graphs(mvqa_dataset, mvqa_svqa):
    """Parsed query graphs for all 100 MVQA questions (None = parse
    failure, the Fig. 8a case)."""
    from repro.errors import QueryError

    graphs = []
    for question in mvqa_dataset.questions:
        try:
            graphs.append(mvqa_svqa.parse_question(question.text))
        except QueryError:
            graphs.append(None)
    return graphs


@pytest.fixture(scope="session")
def vqa2_dataset():
    """The modified-VQAv2 analogue (§VII)."""
    return build_modified_vqa2()


@pytest.fixture(scope="session")
def vqa2_svqa(vqa2_dataset):
    svqa = SVQA(vqa2_dataset.scenes, vqa2_dataset.kg)
    svqa.build()
    return svqa
