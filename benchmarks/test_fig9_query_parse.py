"""Exp-4 / Figure 9 — query-parse latency.

9(a): our linguistic method vs ABCD-MLP / ABCD-bilinear / DisSim over
growing batch sizes.  The DL splitters pay a model-load cost, so ours
wins at small batches and the gap narrows as the batch grows.

9(b): query-graph generation latency by clause count — A = average,
B/C/D = 1/2/3-clause questions; latency grows with clause count and
the average stays well under a second (paper: 0.63 s).
"""

import pytest

from repro.baselines import (
    ABCD_BILINEAR,
    ABCD_MLP,
    BaselineSplitter,
    DISSIM,
    LinguisticSplitter,
)
from repro.core import generate_query_graph
from repro.eval.harness import format_table
from repro.simtime import SimClock

BATCHES = (1, 5, 10, 20, 30)

ONE_CLAUSE = "Is there a dog near the fence?"
TWO_CLAUSE = "Does the dog that is holding the frisbee appear near the man?"
THREE_CLAUSE = ("Does the dog that is holding the frisbee appear near the "
                "man that is next to the bus?")


def question_batch(n):
    pool = [
        ONE_CLAUSE, TWO_CLAUSE, THREE_CLAUSE,
        "How many dogs are standing on the grass that is near the fence?",
        "What kind of animals is carried by the pets that are standing "
        "on the grass?",
    ]
    return [pool[i % len(pool)] for i in range(n)]


def splitter_latency(make, n):
    clock = SimClock()
    splitter = make(clock)
    splitter.split_many(question_batch(n))
    return clock.elapsed


def test_fig9a_method_comparison(benchmark):
    def run():
        table = {}
        makers = {
            "Ours": lambda clock: LinguisticSplitter(clock),
            "ABCD-MLP": lambda clock: BaselineSplitter(ABCD_MLP, clock),
            "ABCD-bilinear":
                lambda clock: BaselineSplitter(ABCD_BILINEAR, clock),
            "DisSim": lambda clock: BaselineSplitter(DISSIM, clock),
        }
        for name, make in makers.items():
            table[name] = [splitter_latency(make, n) for n in BATCHES]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name] + [f"{v:.2f}" for v in values]
            for name, values in table.items()]
    print()
    print(format_table(
        ["Method"] + [f"n={n}" for n in BATCHES], rows,
        title="Figure 9(a) — splitting latency vs batch size "
              "(simulated seconds)",
    ))

    # ours wins at small batch sizes (no model load)...
    for name in ("ABCD-MLP", "ABCD-bilinear", "DisSim"):
        assert table["Ours"][0] < table[name][0]
    # ...and the advantage narrows as n grows (load cost amortizes)
    def ratio(name, i):
        return table[name][i] / table["Ours"][i]
    for name in ("ABCD-MLP", "ABCD-bilinear", "DisSim"):
        assert ratio(name, 0) > ratio(name, len(BATCHES) - 1)
    # the paper reports roughly 10x overall on small batches
    assert ratio("ABCD-MLP", 0) > 5


def test_fig9b_latency_by_clause_count(benchmark):
    def run():
        latencies = {}
        for label, question in (("B", ONE_CLAUSE), ("C", TWO_CLAUSE),
                                ("D", THREE_CLAUSE)):
            clock = SimClock()
            generate_query_graph(question, clock=clock)
            latencies[label] = clock.elapsed
        latencies["A"] = sum(latencies[k] for k in "BCD") / 3
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Type", "Latency (simulated s)"],
        [[k, f"{latencies[k]:.4f}"] for k in "ABCD"],
        title="Figure 9(b) — query-graph generation latency by question "
              "complexity (A=avg, B/C/D = 1/2/3 clauses)",
    ))

    # latency grows with clause count; average under a second (paper 0.63s)
    assert latencies["B"] < latencies["C"] < latencies["D"]
    assert latencies["A"] < 1.0
