"""Exp-1 / Table III — SVQA accuracy and latency on MVQA.

Paper row: latency 10.38 s, judgment 90.0%, counting 80.0%,
reasoning 87.5% (average 85.83%).  Latency here is simulated seconds
(see repro.simtime); the acceptance bands check the *shape*: high
accuracy in all three types with counting the hardest, and a batch
latency in the paper's order of magnitude.
"""

from repro.eval.harness import evaluate, format_table, percentage

PAPER = {"latency": 10.38, "judgment": 0.90, "counting": 0.80,
         "reasoning": 0.875}


def test_table3_svqa_on_mvqa(mvqa_dataset, mvqa_svqa, benchmark):
    def run():
        return evaluate("SVQA", mvqa_dataset.questions,
                        mvqa_svqa.answer_many, lambda: mvqa_svqa.elapsed)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = result.summary()
    print()
    print(format_table(
        ["Method", "Latency(Sec.)", "Judgment", "Counting", "Reasoning"],
        [
            ["SVQA (ours)", f"{row['latency']:.2f}",
             percentage(row["judgment"]), percentage(row["counting"]),
             percentage(row["reasoning"])],
            ["SVQA (paper)", f"{PAPER['latency']:.2f}",
             percentage(PAPER["judgment"]), percentage(PAPER["counting"]),
             percentage(PAPER["reasoning"])],
        ],
        title="Table III — answering complex queries on MVQA",
    ))
    print(f"overall: {percentage(row['overall'])} (paper: 85.8%)")

    # accuracy bands around the paper's levels
    assert 0.80 <= row["judgment"] <= 1.0
    assert 0.65 <= row["counting"] <= 0.95
    assert 0.75 <= row["reasoning"] <= 1.0
    assert 0.78 <= row["overall"] <= 0.97
    # counting is the hardest type, as in the paper
    assert row["counting"] <= row["judgment"]
    assert row["counting"] <= row["reasoning"]
    # simulated batch latency in the paper's order of magnitude
    assert 3.0 <= row["latency"] <= 60.0
