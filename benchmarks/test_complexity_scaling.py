"""§V complexity analysis — executor cost vs merged-graph size.

The paper derives O(N * |V|²/4) for answering an N-clause query over a
merged graph with |V| vertices.  The simulated clock counts the
executor's primitive operations, so the scaling is directly
measurable: per-query matchVertex comparisons grow with the label count
and relation-pair scans grow with the instance count, while the clause
count N multiplies the whole thing.
"""

from repro.core import QueryGraphExecutor, SVQA, generate_query_graph
from repro.dataset.kg import build_commonsense_kg
from repro.eval.harness import format_table
from repro.simtime import SimClock
from repro.synth import SceneGenerator

IMAGE_COUNTS = (50, 100, 200, 400)

TWO_CLAUSE = "How many dogs are standing on the grass that is near the fence?"
THREE_CLAUSE = ("How many dogs are standing on the grass that is near the "
                "fence that is behind the house?")


def build_merged(image_count):
    scenes = SceneGenerator(seed=71).generate_pool(image_count)
    svqa = SVQA(scenes, build_commonsense_kg())
    svqa.build()
    return svqa.merged


def run_query(merged, question):
    clock = SimClock()
    executor = QueryGraphExecutor(merged, clock=clock)
    executor.execute(generate_query_graph(question))
    return clock


def test_cost_scales_with_graph_size(benchmark):
    def run():
        rows = []
        for image_count in IMAGE_COUNTS:
            merged = build_merged(image_count)
            clock = run_query(merged, TWO_CLAUSE)
            rows.append((
                image_count,
                merged.graph.vertex_count,
                clock.counts.get("edge_scan", 0),
                clock.elapsed,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Images", "|V_mg|", "edges scanned", "latency (s)"],
        [[str(n), str(v), str(e), f"{t:.3f}"] for n, v, e, t in rows],
        title="Executor cost vs merged-graph size (2-clause query)",
    ))

    vertices = [v for _, v, _, _ in rows]
    scans = [e for _, _, e, _ in rows]
    latencies = [t for _, _, _, t in rows]
    assert vertices == sorted(vertices)
    # work grows with the graph (the |V|² term of §V)
    assert scans[-1] > scans[0]
    assert latencies[-1] > latencies[0]


def test_cost_scales_with_clause_count(benchmark):
    def run():
        merged = build_merged(200)
        two = run_query(merged, TWO_CLAUSE)
        three = run_query(merged, THREE_CLAUSE)
        return two, three

    two, three = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Clauses N", "scope scans", "path probes", "latency (s)"],
        [["2", str(two.counts.get("scope_scan", 0)),
          str(two.counts.get("path_probe", 0)), f"{two.elapsed:.3f}"],
         ["3", str(three.counts.get("scope_scan", 0)),
          str(three.counts.get("path_probe", 0)), f"{three.elapsed:.3f}"]],
        title="Executor cost vs clause count N (the O(N * |V|^2/4) factor)",
    ))
    # one more clause means one more vertex to query
    assert three.counts.get("path_probe", 0) > \
        two.counts.get("path_probe", 0)
    assert three.elapsed > two.elapsed
