"""Table I — comparison of VQA datasets.

The literature rows are constants from the paper; the MVQA row is
computed from the actual build.  The properties the paper highlights —
MVQA is the only knowledge-based AND cross-image dataset, and has the
longest average query — must hold for our build too.
"""

from repro.dataset.stats import LITERATURE_ROWS, mvqa_row
from repro.eval.harness import format_table


def test_table1_dataset_comparison(mvqa_dataset, benchmark):
    ours = benchmark.pedantic(mvqa_row, args=(mvqa_dataset,),
                              rounds=1, iterations=1)
    rows = []
    for row in LITERATURE_ROWS + (ours,):
        rows.append([
            row.name, str(row.images),
            "yes" if row.knowledge_based else "no",
            "yes" if row.cross_image else "no",
            row.source, f"{row.avg_query_length:.1f}",
        ])
    print()
    print(format_table(
        ["Dataset", "Images", "Knowledge?", "Cross-image?", "Source",
         "AvgQueryLen"],
        rows, title="Table I — comparison of VQA datasets",
    ))

    # the claims the paper makes about MVQA
    assert ours.knowledge_based and ours.cross_image
    assert all(not r.cross_image for r in LITERATURE_ROWS)
    assert ours.images == 4_233
    # longest average query length of all datasets (paper: 16.9)
    assert ours.avg_query_length > max(
        r.avg_query_length for r in LITERATURE_ROWS
    )
