"""Exp-5 / Figures 10-11 — the key-centric caching mechanism.

10(a): latency with vs without cache over growing question batches
       (paper: ~48.9% average reduction, growing with batch size).
10(b): granularity ablation on 100 questions — No / Scope / Path /
       Both (paper: 13.46% / 27.61% / 38.72% reductions).
11:    cache pool size sweep with LFU vs LRU at several batch sizes
       (latency flattens once the pool holds everything; LFU slightly
       ahead of LRU).
"""

import pytest

from repro.core import KeyCentricCache, QueryGraphExecutor
from repro.eval.harness import format_table
from repro.simtime import SimClock

BATCHES_10A = (20, 40, 60, 80, 100)
POOL_SIZES = (10, 25, 50, 100, 200)


def run_batch(merged, graphs, cache, count):
    """Execute ``count`` query graphs on a fresh executor + clock."""
    clock = SimClock()
    executor = QueryGraphExecutor(merged, cache=cache, clock=clock)
    for graph in graphs[:count]:
        if graph is not None:
            executor.execute(graph)
    return clock.elapsed


def make_cache(scope=True, path=True, pool=100, policy="lfu"):
    if not (scope or path):
        return KeyCentricCache.disabled()
    return KeyCentricCache.create(pool_size=pool, policy=policy,
                                  enabled_scope=scope, enabled_path=path)


def test_fig10a_cache_vs_nocache(mvqa_svqa, mvqa_query_graphs, benchmark):
    merged = mvqa_svqa.merged

    def run():
        rows = []
        for count in BATCHES_10A:
            without = run_batch(merged, mvqa_query_graphs,
                                make_cache(False, False), count)
            with_cache = run_batch(merged, mvqa_query_graphs,
                                   make_cache(), count)
            rows.append((count, without, with_cache))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Questions", "No cache (s)", "With cache (s)", "Reduction"],
        [[str(n), f"{a:.2f}", f"{b:.2f}", f"{100 * (1 - b / a):.1f}%"]
         for n, a, b in rows],
        title="Figure 10(a) — latency with vs without the key-centric "
              "cache (simulated seconds)",
    ))

    reductions = [1 - b / a for _, a, b in rows]
    # caching always helps, averaging a substantial cut (paper ~48.9%)
    assert all(r > 0.15 for r in reductions)
    assert sum(reductions) / len(reductions) > 0.30
    # the benefit at the largest batch beats the smallest
    assert reductions[-1] >= reductions[0] - 0.05


def test_fig10b_cache_granularity(mvqa_svqa, mvqa_query_graphs, benchmark):
    merged = mvqa_svqa.merged
    configs = {
        "No": make_cache(False, False),
        "S": make_cache(True, False),
        "P": make_cache(False, True),
        "B": make_cache(True, True),
    }

    def run():
        return {
            name: run_batch(merged, mvqa_query_graphs, cache, 100)
            for name, cache in configs.items()
        }

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    base = latencies["No"]
    print()
    print(format_table(
        ["Granularity", "Latency (s)", "Reduction"],
        [[name, f"{latencies[name]:.2f}",
          f"{100 * (1 - latencies[name] / base):.1f}%"]
         for name in ("No", "S", "P", "B")],
        title="Figure 10(b) — cache granularity on 100 questions "
              "(pool = 100)",
    ))

    # each component helps; both together help the most (paper:
    # 13.46% scope, 27.61% path, 38.72% both)
    assert latencies["S"] < base
    assert latencies["P"] < base
    assert latencies["B"] < latencies["S"]
    assert latencies["B"] < latencies["P"]


@pytest.mark.parametrize("question_count", (20, 60, 100))
def test_fig11_pool_size(mvqa_svqa, mvqa_query_graphs, question_count,
                         benchmark):
    merged = mvqa_svqa.merged

    def run():
        table = {}
        for policy in ("lfu", "lru"):
            table[policy] = [
                run_batch(merged, mvqa_query_graphs,
                          make_cache(pool=pool, policy=policy),
                          question_count)
                for pool in POOL_SIZES
            ]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Policy"] + [f"pool={p}" for p in POOL_SIZES],
        [[policy.upper()] + [f"{v:.2f}" for v in values]
         for policy, values in table.items()],
        title=f"Figure 11 — cache pool size sweep "
              f"({question_count} questions, simulated seconds)",
    ))

    for policy in ("lfu", "lru"):
        values = table[policy]
        # larger pools never hurt much, and the curve flattens: the
        # last doubling gains less than the first one
        first_gain = values[0] - values[1]
        last_gain = values[-2] - values[-1]
        assert last_gain <= first_gain + 1e-9
        assert values[-1] <= values[0] + 1e-9
    # LFU at the largest pool is at least as good as LRU (paper:
    # "LFU achieves slightly better performance in most cases")
    assert table["lfu"][-1] <= table["lru"][-1] * 1.05
