"""§V ablation — parallelizing query execution.

The paper notes the executor "features high parallelization": once the
merged graph is built, queries are independent.  This bench runs the
100 MVQA query graphs through the real concurrent ``BatchExecutor`` at
several worker counts and reports, per count, the measured simulated
makespan (busiest clock shard), the analytical longest-first
bin-packing estimate (``estimate_parallel_latency``, the ``workers=1``
fallback model), and the measured wall-clock seconds.
"""

from repro.core import BatchExecutor, KeyCentricCache, \
    estimate_parallel_latency
from repro.eval.harness import format_table

WORKERS = (1, 2, 4, 8)


def run_workers(merged, graphs, workers):
    batch = BatchExecutor(
        merged, cache=KeyCentricCache.create(pool_size=100),
        workers=workers,
    )
    return batch.run(graphs)


def test_parallel_speedup(mvqa_svqa, mvqa_query_graphs, benchmark):
    merged = mvqa_svqa.merged
    graphs = [g for g in mvqa_query_graphs if g is not None]

    def run():
        return {w: run_workers(merged, graphs, w) for w in WORKERS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = results[1]
    rows = []
    for workers in WORKERS:
        result = results[workers]
        estimate = estimate_parallel_latency(serial.latencies, workers)
        rows.append([
            str(workers),
            f"{result.simulated_total:.2f}",
            f"{result.simulated_makespan:.2f}",
            f"{estimate:.2f}",
            f"{result.speedup:.2f}x",
            f"{result.wall_clock:.3f}",
        ])
    print()
    print(format_table(
        ["Workers", "Sim total (s)", "Makespan (s)", "Estimate (s)",
         "Speedup", "Wall (s)"],
        rows,
        title="Parallel query execution — measured makespan vs the "
              "analytical estimate",
    ))

    # answers are identical at every worker count
    serial_values = [a.value for a in serial.answers]
    for workers in WORKERS[1:]:
        assert [a.value for a in results[workers].answers] == \
            serial_values

    # one worker: makespan IS the serial latency
    assert serial.simulated_makespan == serial.simulated_total

    # concurrency genuinely splits the work across lanes
    most = results[WORKERS[-1]]
    assert len(most.shards) > 1
    assert most.simulated_makespan < serial.simulated_total
    # bounded below by the longest single query
    assert most.simulated_makespan >= max(most.latencies)
