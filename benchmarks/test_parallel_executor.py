"""§V ablation — parallelizing query execution.

The paper notes the executor "features high parallelization": once the
merged graph is built, queries are independent, so a batch's wall time
is the makespan over worker lanes.  This bench measures per-query
simulated latencies and the estimated speedup at several worker counts.
"""

from repro.core import KeyCentricCache, QueryGraphExecutor, \
    estimate_parallel_latency
from repro.eval.harness import format_table
from repro.simtime import SimClock

WORKERS = (1, 2, 4, 8)


def test_parallel_speedup(mvqa_svqa, mvqa_query_graphs, benchmark):
    merged = mvqa_svqa.merged

    def run():
        clock = SimClock()
        executor = QueryGraphExecutor(
            merged, cache=KeyCentricCache.create(pool_size=100),
            clock=clock,
        )
        latencies = []
        for graph in mvqa_query_graphs:
            if graph is None:
                continue
            start = clock.snapshot()
            executor.execute(graph)
            latencies.append(start.interval)
        return latencies

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = sum(latencies)
    rows = []
    for workers in WORKERS:
        makespan = estimate_parallel_latency(latencies, workers)
        rows.append([str(workers), f"{makespan:.2f}",
                     f"{serial / makespan:.2f}x"])
    print()
    print(format_table(
        ["Workers", "Makespan (s)", "Speedup"], rows,
        title="Parallel query execution — makespan vs worker count",
    ))

    makespans = [estimate_parallel_latency(latencies, w) for w in WORKERS]
    # more workers never slow the batch down
    assert all(a >= b for a, b in zip(makespans, makespans[1:]))
    # near-linear at low counts (queries are comparable in size)
    assert serial / makespans[1] > 1.6
    # bounded by the longest single query
    assert makespans[-1] >= max(latencies)
