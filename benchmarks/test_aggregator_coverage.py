"""Algorithm 1 ablation — subgraph-cache thresholds and coverage.

§III-B reports that with k=2 and c'=5 on MVQA, about 58% of vertex
types occur frequently enough to be cached and nearly 82% of scene-
graph vertices are covered by the cached subgraphs.  Our synthetic
scenes use a smaller category vocabulary, so at the full 4,233-image
scale almost every type clears c'=5; the ablation therefore sweeps c'
to show the trade-off the paper's numbers are one point of: higher
thresholds cache fewer types, cover fewer vertices, and push more
lookups to storage.
"""

from repro.core import AggregatorConfig, DataAggregator
from repro.dataset.kg import build_commonsense_kg
from repro.eval.harness import format_table
from repro.simtime import SimClock

THRESHOLDS = (5, 50, 200, 800, 2000)


def test_aggregator_cache_coverage(mvqa_svqa, benchmark):
    scene_graphs = mvqa_svqa.scene_graphs

    def run():
        rows = []
        for threshold in THRESHOLDS:
            clock = SimClock()
            aggregator = DataAggregator(
                build_commonsense_kg(),
                AggregatorConfig(frequency_threshold=threshold),
                clock=clock,
            )
            merged = aggregator.merge(scene_graphs)
            rows.append((threshold, merged.stats, clock))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["c'", "types cached", "type frac", "vertex coverage",
         "cache links", "storage links"],
        [[str(t), str(len(s.cached_categories)),
          f"{100 * s.cached_type_fraction:.0f}%",
          f"{100 * s.covered_vertex_fraction:.0f}%",
          str(s.cache_links), str(s.storage_links)]
         for t, s, _ in rows],
        title="Algorithm 1 — subgraph cache coverage vs frequency "
              "threshold c' (k=2)",
    ))

    fractions = [s.covered_vertex_fraction for _, s, _ in rows]
    # coverage decreases monotonically as the threshold rises
    assert all(a >= b for a, b in zip(fractions, fractions[1:], strict=False))
    # at the paper's operating point the cache covers most vertices
    assert fractions[0] > 0.8
    # storage lookups grow as the cache shrinks
    storage = [s.storage_links for _, s, _ in rows]
    assert storage[-1] > storage[0]


def test_cache_assisted_merge_is_equivalent(mvqa_svqa, benchmark):
    """Correctness invariant: the cache changes cost, not the graph."""
    scene_graphs = mvqa_svqa.scene_graphs[:400]

    def run():
        with_cache = DataAggregator(
            build_commonsense_kg(), AggregatorConfig(use_cache=True)
        ).merge(scene_graphs)
        without = DataAggregator(
            build_commonsense_kg(), AggregatorConfig(use_cache=False)
        ).merge(scene_graphs)
        return with_cache, without

    with_cache, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_cache.graph.vertex_count == without.graph.vertex_count
    assert with_cache.graph.edge_count == without.graph.edge_count
