"""Table II — MVQA composition by question type.

Paper values: 40/16/44 questions, 94/35/90 clauses, 58/28/70 unique
SPOs (136 total), average 2.2 clauses per question, 40 questions with
constraints, and 1593/2182/1201 images to inspect on average.
"""

from repro.core.spoc import QuestionType
from repro.dataset.stats import (
    average_clause_count,
    table2_breakdown,
    total_unique_spos,
)
from repro.eval.harness import format_table

PAPER_ROWS = {
    QuestionType.JUDGMENT: (40, 94, 58, 1593),
    QuestionType.COUNTING: (16, 35, 28, 2182),
    QuestionType.REASONING: (44, 90, 70, 1201),
}


def test_table2_mvqa_breakdown(mvqa_dataset, benchmark):
    rows = benchmark.pedantic(table2_breakdown, args=(mvqa_dataset,),
                              rounds=1, iterations=1)
    printable = []
    for row in rows:
        paper = PAPER_ROWS[row.question_type]
        printable.append([
            row.question_type.value.capitalize(),
            f"{row.questions} ({paper[0]})",
            f"{row.clauses} ({paper[1]})",
            f"{row.unique_spos} ({paper[2]})",
            f"{row.avg_images} ({paper[3]})",
        ])
    print()
    print(format_table(
        ["Type", "Questions", "Clauses", "SPOs", "Avg. Images"],
        printable,
        title="Table II — MVQA composition (paper values in parens)",
    ))
    print(f"total unique SPOs: {total_unique_spos(mvqa_dataset)} "
          f"(paper: 136)")
    print(f"average clauses/question: "
          f"{average_clause_count(mvqa_dataset):.2f} (paper: 2.2)")

    by_type = {row.question_type: row for row in rows}
    # exact composition match (the builder enforces it)
    for qtype, (questions, clauses, _, _) in PAPER_ROWS.items():
        assert by_type[qtype].questions == questions
        assert by_type[qtype].clauses == clauses
    # clause average ~2.2, inspect-image magnitudes in the paper's range
    assert 2.0 <= average_clause_count(mvqa_dataset) <= 2.4
    for row in rows:
        assert 500 <= row.avg_images <= 4000
