"""Exp-2 / Table IV — SVQA vs VisualBert / ViLT / OFA on modified VQAv2.

Paper:
    VisualBert  3375.56 s   72.0 / 60.0 / 68.5
    Vilt        4216.34 s   76.5 / 77.4 / 67.0
    OFA          866.36 s   95.5 / 87.0 / 79.0
    SVQA          10.38 s   93.0 / 83.8 / 83.2

The headline shapes: SVQA is orders of magnitude faster (it never
re-runs a vision model per question); OFA is the strongest baseline
and beats SVQA on judgment; SVQA wins reasoning.
"""

from repro.baselines import BaselineVQA, OFA, VILT, VISUALBERT
from repro.eval.harness import evaluate, format_table, percentage


def test_table4_comparison(vqa2_dataset, vqa2_svqa, benchmark):
    def run_all():
        results = {}
        for spec in (VISUALBERT, VILT, OFA):
            model = BaselineVQA(spec, vqa2_dataset.scenes)
            results[spec.name] = evaluate(
                spec.name, vqa2_dataset.questions, model.answer_many,
                lambda model=model: model.clock.elapsed,
            )
        results["SVQA"] = evaluate(
            "SVQA", vqa2_dataset.questions, vqa2_svqa.answer_many,
            lambda: vqa2_svqa.elapsed,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name in ("VisualBert", "Vilt", "OFA", "SVQA"):
        row = results[name].summary()
        rows.append([name, f"{row['latency']:.2f}",
                     percentage(row["judgment"]),
                     percentage(row["counting"]),
                     percentage(row["reasoning"])])
    print()
    print(format_table(
        ["Method", "Latency(Sec.)", "Judgment", "Counting", "Reasoning"],
        rows, title="Table IV — comparison on the modified VQAv2",
    ))

    svqa = results["SVQA"].summary()
    ofa = results["OFA"].summary()
    vilt = results["Vilt"].summary()
    visualbert = results["VisualBert"].summary()

    # --- latency shape: SVQA orders of magnitude faster; OFA is the
    # fastest baseline; per-image baselines pay per (image x clause)
    assert svqa["latency"] < 0.05 * ofa["latency"]
    assert ofa["latency"] < visualbert["latency"] < vilt["latency"]

    # --- accuracy shape
    assert ofa["overall"] > vilt["overall"] > visualbert["overall"]
    assert ofa["judgment"] >= svqa["judgment"]          # OFA wins judgment
    assert svqa["reasoning"] > ofa["reasoning"]         # SVQA wins reasoning
    assert svqa["reasoning"] > vilt["reasoning"]
    assert svqa["reasoning"] > visualbert["reasoning"]
    assert svqa["overall"] >= 0.85
