"""Legacy setup script.

Kept because the execution environment has no ``wheel`` package and no
network, so PEP 660 editable installs (which need ``bdist_wheel``)
fail; ``pip install -e .`` falls back to ``setup.py develop`` here.
Metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
