#!/usr/bin/env python
"""Warm-start smoke test for ``repro serve --snapshot`` (make snapshot-smoke).

Writes a durable snapshot with ``repro snapshot``, then boots the real
threaded server twice on ephemeral ports — once cold (full vision
pipeline rebuild) and once warm (recovered from the snapshot) — and
drives both through an identical request sequence:

* every ``/ask`` response body must be byte-identical across the two
  servers (same answers, same confidence, same latency accounting);
* ``/metrics`` must be byte-identical (the store keeps its own private
  metrics registry precisely so a healthy warm start cannot perturb
  the serving metrics);
* the warm server's ``/healthz`` must attribute its index to the
  snapshot (``store.source == "snapshot"``) while the cold server
  reports a rebuild.

Exits non-zero on any divergence; always tears both servers down.
"""

import difflib
import json
import os
import re
import subprocess
import sys
import tempfile
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.dataset.movie import FLAGSHIP_QUESTION  # noqa: E402

STARTUP_PATTERN = re.compile(r"serving .* on (http://[\d.]+:\d+)")

QUESTIONS = [
    FLAGSHIP_QUESTION,
    "How many people are in the movie?",
    FLAGSHIP_QUESTION,
]


def fail(message):
    print(f"SNAPSHOT SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def http(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=env, text=True, capture_output=True,
    )


def boot_server(*extra_argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        cwd=REPO_ROOT, env=env, text=True,
    )
    for _ in range(20):
        line = server.stdout.readline()
        if not line and server.poll() is not None:
            break
        match = STARTUP_PATTERN.search(line or "")
        if match is not None:
            return server, match.group(1)
    server.terminate()
    server.wait(timeout=10)
    fail("server did not start")


def transcript(base):
    """The byte transcript an identical client session produces."""
    lines = []
    for question in QUESTIONS:
        status, body = http("POST", base + "/ask",
                            {"question": question})
        if status != 200:
            fail(f"/ask returned {status}")
        lines.append(body)
    status, metrics = http("GET", base + "/metrics")
    if status != 200:
        fail(f"/metrics returned {status}")
    status, healthz = http("GET", base + "/healthz")
    if status != 200:
        fail(f"/healthz returned {status}")
    return lines, metrics, json.loads(healthz)


def main():
    with tempfile.TemporaryDirectory(prefix="svqa-snapshot-") as root:
        store = os.path.join(root, "store")
        result = run_cli("snapshot", "--out", store)
        if result.returncode != 0:
            fail(f"repro snapshot failed:\n{result.stdout}"
                 f"{result.stderr}")
        print(f"snapshot written: {result.stdout.strip()}")

        recover = run_cli("recover", "--store", store)
        if recover.returncode != 0:
            fail(f"repro recover rejected a fresh snapshot:\n"
                 f"{recover.stdout}{recover.stderr}")
        print("  offline recover ok")

        cold, cold_base = boot_server()
        try:
            warm, warm_base = boot_server("--snapshot", store)
            try:
                print(f"cold server at {cold_base}, "
                      f"warm server at {warm_base}")
                cold_asks, cold_metrics, cold_health = \
                    transcript(cold_base)
                warm_asks, warm_metrics, warm_health = \
                    transcript(warm_base)
            finally:
                warm.terminate()
                warm.wait(timeout=10)
        finally:
            cold.terminate()
            cold.wait(timeout=10)

    for index, (a, b) in enumerate(zip(cold_asks, warm_asks)):
        if a != b:
            fail(f"/ask #{index} diverged:\ncold: {a}\nwarm: {b}")
    print(f"  {len(cold_asks)} /ask responses byte-identical")

    if cold_metrics != warm_metrics:
        diff = "\n".join(difflib.unified_diff(
            cold_metrics.splitlines(), warm_metrics.splitlines(),
            "cold", "warm", lineterm=""))
        fail(f"/metrics diverged:\n{diff}")
    print("  /metrics byte-identical")

    if cold_health["store"]["source"] != "rebuild":
        fail(f"cold store block wrong: {cold_health['store']}")
    if warm_health["store"]["source"] != "snapshot":
        fail(f"warm server did not use the snapshot: "
             f"{warm_health['store']}")
    if warm_health["store"]["wal_records_replayed"] != 0:
        fail(f"fresh snapshot should replay nothing: "
             f"{warm_health['store']}")
    if warm_health["index"]["graph_epoch"] != \
            cold_health["index"]["graph_epoch"]:
        fail(f"epoch mismatch: cold={cold_health['index']} "
             f"warm={warm_health['index']}")
    print(f"  /healthz ok: warm source=snapshot "
          f"epoch={warm_health['store']['epoch']}")
    print("snapshot smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
