#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` (make serve-smoke / CI).

Boots the real threaded server on an ephemeral port, then checks the
three endpoints over actual HTTP:

* ``POST /ask`` with the seeded flagship question answers correctly
  and carries the full contract (``answer``/``question_type``/
  ``sources``/``meta``);
* ``GET /healthz`` reports a ready index and all breakers closed;
* ``GET /metrics`` parses as Prometheus text and counts the request.

Exits non-zero on any violation; always tears the server down.
"""

import json
import os
import re
import subprocess
import sys
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.dataset.movie import FLAGSHIP_ANSWER, FLAGSHIP_QUESTION  # noqa: E402
from repro.observability import parse_prometheus  # noqa: E402

STARTUP_PATTERN = re.compile(r"serving .* on (http://[\d.]+:\d+)")


def fail(message):
    print(f"SMOKE FAILURE: {message}", file=sys.stderr)
    raise SystemExit(1)


def http(method, url, payload=None, headers=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method=method,
                                     headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


def check_ask(base):
    status, body = http("POST", base + "/ask",
                        {"question": FLAGSHIP_QUESTION})
    if status != 200:
        fail(f"/ask returned {status}")
    payload = json.loads(body)
    if sorted(payload) != ["answer", "meta", "question_type", "sources"]:
        fail(f"/ask contract keys wrong: {sorted(payload)}")
    if payload["answer"] != FLAGSHIP_ANSWER:
        fail(f"flagship answer {payload['answer']!r} != "
             f"{FLAGSHIP_ANSWER!r}")
    meta_keys = sorted(payload["meta"])
    expected = ["confidence", "deadline_s", "degraded", "fault_events",
                "latency"]
    if meta_keys != expected:
        fail(f"/ask meta keys wrong: {meta_keys}")
    if sorted(payload["sources"]) != ["images", "support"]:
        fail(f"/ask sources keys wrong: {sorted(payload['sources'])}")
    print(f"  /ask ok: answer={payload['answer']!r} "
          f"latency={payload['meta']['latency']}s")


def check_deadline(base):
    status, body = http("POST", base + "/ask",
                        {"question": FLAGSHIP_QUESTION},
                        headers={"Deadline-Ms": "0.0005"})
    payload = json.loads(body)
    if status != 200 or not payload["meta"]["degraded"]:
        fail("tiny Deadline-Ms did not produce a degraded 200")
    kinds = {event["kind"] for event in payload["meta"]["fault_events"]}
    if "deadline" not in kinds:
        fail(f"no deadline fault event in {kinds}")
    print("  /ask deadline cutoff ok: degraded partial answer")


def check_healthz(base):
    status, body = http("GET", base + "/healthz")
    if status != 200:
        fail(f"/healthz returned {status}")
    payload = json.loads(body)
    expected_keys = ["admission", "breakers", "index", "status", "store"]
    if sorted(payload) != expected_keys:
        fail(f"/healthz shape wrong: {sorted(payload)}")
    if payload["status"] != "ok" or not payload["index"]["ready"]:
        fail(f"service not healthy: {payload}")
    states = set(payload["breakers"].values())
    if len(payload["breakers"]) != 10 or states != {"closed"}:
        fail(f"breaker map wrong: {payload['breakers']}")
    if payload["store"]["source"] != "rebuild":
        fail(f"cold serve should report store source=rebuild: "
             f"{payload['store']}")
    print(f"  /healthz ok: {len(payload['breakers'])} breakers closed, "
          f"epoch {payload['index']['graph_epoch']}, "
          f"store source={payload['store']['source']}")


def check_metrics(base):
    status, body = http("GET", base + "/metrics")
    if status != 200:
        fail(f"/metrics returned {status}")
    families = parse_prometheus(body)  # raises on malformed text
    for name in ("svqa_http_requests_total", "svqa_admission_total",
                 "svqa_serve_batch_size"):
        if name not in families:
            fail(f"{name} missing from /metrics")
    served = sum(
        value
        for _, labels, value in
        families["svqa_http_requests_total"]["samples"]
        if labels.get("route") == "/ask" and labels.get("code") == "200"
    )
    if served < 2:
        fail(f"/metrics counted {served} served /ask requests, "
             "expected >= 2")
    print(f"  /metrics ok: {len(families)} families, "
          f"{served:.0f} served /ask requests")


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        cwd=REPO_ROOT, env=env, text=True,
    )
    try:
        line = server.stdout.readline()
        match = STARTUP_PATTERN.search(line or "")
        if match is None:
            rest = server.stdout.read() if server.poll() is not None \
                else ""
            fail(f"server did not start: {line!r}{rest}")
        base = match.group(1)
        print(f"server up at {base}")
        check_ask(base)
        check_deadline(base)
        check_healthz(base)
        check_metrics(base)
    finally:
        server.terminate()
        server.wait(timeout=10)
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
