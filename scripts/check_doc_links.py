#!/usr/bin/env python3
"""CI gate: every documentation reference must resolve.

Scans the documentation tier (``README.md``, ``DESIGN.md``,
``ROADMAP.md``, ``EXPERIMENTS.md``, and everything under ``docs/``)
for two kinds of references and fails if any is dead:

* relative markdown links — ``[text](path)`` and ``[text](path#anchor)``
  where ``path`` is not an absolute URL; the target must exist in the
  working tree (resolved against the referencing file's directory,
  falling back to the repo root for root-anchored paths);
* source-location references — ``path/to/file.py:123`` (or without a
  line number); the file must exist and, when a line number is given,
  actually have that many lines.

Stdlib only, exit status 0/1, one diagnostic line per dead reference —
run directly (``python scripts/check_doc_links.py``) or via
``make doc-links``.  Wired into the CI lint-analysis job so renames
and line drift break the build instead of the reader.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the documentation tier the gate covers
DOC_FILES = ("README.md", "DESIGN.md", "ROADMAP.md", "EXPERIMENTS.md")
DOC_DIRS = ("docs",)

#: ``[text](target)`` — target captured up to the closing paren
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ``src/repro/core/executor.py:123`` style source references; also
#: matches bare file paths inside backticks so renames are caught
SOURCE_REF = re.compile(
    r"(?P<path>(?:src|tests|scripts|benchmarks|docs)/[\w./-]+\.\w+)"
    r"(?::(?P<line>\d+))?"
)

#: URL schemes that are not ours to verify
EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[Path]:
    """The markdown files the gate scans, in deterministic order."""
    files = [REPO_ROOT / name for name in DOC_FILES]
    for directory in DOC_DIRS:
        files.extend(sorted((REPO_ROOT / directory).rglob("*.md")))
    return [f for f in files if f.exists()]


def resolve_relative(doc: Path, target: str) -> Path | None:
    """Resolve a relative link against the doc's directory, falling
    back to the repo root (docs under ``docs/`` habitually link to
    root-level files both ways); returns the first existing path, or
    ``None``."""
    candidates = [doc.parent / target, REPO_ROOT / target]
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return None


def check_markdown_links(doc: Path, text: str) -> list[str]:
    """Dead relative markdown links in ``doc``, one message each."""
    problems = []
    for number, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            if resolve_relative(doc, bare) is None:
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}:{number}: "
                    f"dead link -> {target}"
                )
    return problems


def check_source_refs(doc: Path, text: str) -> list[str]:
    """Dead ``path/to/file.py:line`` references in ``doc``."""
    problems = []
    line_counts: dict[Path, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        for match in SOURCE_REF.finditer(line):
            path = REPO_ROOT / match.group("path")
            if not path.exists():
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}:{number}: "
                    f"missing file -> {match.group('path')}"
                )
                continue
            ref_line = match.group("line")
            if ref_line is None or path.is_dir():
                continue
            if path not in line_counts:
                line_counts[path] = len(
                    path.read_text(encoding="utf-8").splitlines()
                )
            if int(ref_line) > line_counts[path]:
                problems.append(
                    f"{doc.relative_to(REPO_ROOT)}:{number}: "
                    f"line out of range -> {match.group('path')}:"
                    f"{ref_line} (file has {line_counts[path]} lines)"
                )
    return problems


def main() -> int:
    """Scan the documentation tier; report and fail on dead refs."""
    problems: list[str] = []
    for doc in iter_doc_files():
        text = doc.read_text(encoding="utf-8")
        problems.extend(check_markdown_links(doc, text))
        problems.extend(check_source_refs(doc, text))
    for problem in problems:
        print(problem)
    checked = len(iter_doc_files())
    if problems:
        print(f"{len(problems)} dead reference(s) across "
              f"{checked} documentation files")
        return 1
    print(f"doc-links: OK ({checked} documentation files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
