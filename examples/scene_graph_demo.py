"""Scene-graph generation with and without TDE (Figure 3 / Example 2).

Builds the paper's example scene — a dog jumping over the grass to
catch a frisbee while a man watches from behind a fence — and shows
how the biased predictor drowns in "on"/"near" while the TDE-debiased
predictor recovers the explicit relations.

Run:  python examples/scene_graph_demo.py
"""

from repro.synth import (
    Box,
    SceneObject,
    SceneRelation,
    SyntheticScene,
    complete_spatial_relations,
)
from repro.vision import (
    MOTIFNET,
    RelationPredictor,
    SGGConfig,
    SGGPipeline,
    SimulatedDetector,
)
from repro.vision.detector import DetectorConfig


def build_figure3_scene() -> SyntheticScene:
    grass = SceneObject(0, "grass", Box(0, 70, 128, 58), 0.95)
    dog = SceneObject(1, "dog", Box(34, 52, 26, 24), 0.30)
    frisbee = SceneObject(2, "frisbee", Box(58, 58, 9, 8), 0.25)
    man = SceneObject(3, "man", Box(86, 38, 20, 42), 0.55)
    fence = SceneObject(4, "fence", Box(70, 30, 58, 16), 0.75)
    relations = [
        SceneRelation(1, 0, "jumping over"),
        SceneRelation(1, 2, "catching"),
        SceneRelation(3, 1, "watching"),
        SceneRelation(1, 3, "in front of"),
        SceneRelation(3, 1, "behind"),
    ]
    relations = complete_spatial_relations(
        [grass, dog, frisbee, man, fence], relations
    )
    return SyntheticScene(0, [grass, dog, frisbee, man, fence], relations,
                          caption="A dog jumps over the grass to catch a "
                                  "frisbee while a man watches.")


def show(title: str, result) -> None:
    print(f"\n{title}")
    names = [d.label for d in result.detections]
    for relation in result.relations:
        print(f"  {{{names[relation.src]}, {relation.predicate}, "
              f"{names[relation.dst]}}}  (score {relation.score:.2f})")


def main() -> None:
    scene = build_figure3_scene()
    print(f"ground truth: {scene.caption}")
    for relation in scene.relations:
        src = scene.objects[relation.src].category
        dst = scene.objects[relation.dst].category
        print(f"  {{{src}, {relation.predicate}, {dst}}}")

    detector = SimulatedDetector(DetectorConfig(label_noise=0.0,
                                                miss_rate=0.0))
    predictor = RelationPredictor(MOTIFNET)

    biased = SGGPipeline(detector, predictor,
                         SGGConfig(use_tde=False)).run(scene)
    show("(a) initial links — biased (many obscure on/near predicates):",
         biased)

    debiased = SGGPipeline(detector, predictor,
                           SGGConfig(use_tde=True)).run(scene)
    show("(c) TDE-debiased links — explicit relations recovered:",
         debiased)


if __name__ == "__main__":
    main()
