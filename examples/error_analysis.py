"""Error analysis: the three failure classes of Figure 8.

(a) statement parsing — an out-of-lexicon latinate word ("canis") is
    POS-tagged FW and the dependency parse fails;
(b) object detection — a toy bear is recognized as a bear;
(c) relationship generation — depth mis-estimation turns "on" into
    "in front of".

Run:  python examples/error_analysis.py
"""

from repro.core import generate_query_graph
from repro.errors import QueryError
from repro.nlp import tag, unknown_word_report
from repro.synth import (
    Box,
    SceneObject,
    SceneRelation,
    SyntheticScene,
)
from repro.vision import (
    MOTIFNET,
    DetectorConfig,
    RelationPredictor,
    SGGConfig,
    SGGPipeline,
    SimulatedDetector,
)


def statement_parsing_error() -> None:
    print("(a) statement parsing error")
    question = ("Does the kind of canis that is sitting on the bed "
                "appear in front of the vehicle?")
    tagged = tag(question)
    print("   ", " ".join(f"{t.text}/{t.tag}" for t in tagged[:6]), "...")
    foreign = unknown_word_report(tagged)
    print(f"    foreign words: {[t.text for t in foreign]}")
    try:
        generate_query_graph(question)
    except QueryError as exc:
        print(f"    -> QueryParseError: {exc}\n")


def object_detection_error() -> None:
    print("(b) object detection error")
    # a small toy on a bed: label noise confuses "toy" with "bear"
    objects = [
        SceneObject(0, "bed", Box(20, 60, 80, 50), 0.6),
        SceneObject(1, "toy", Box(50, 52, 10, 10), 0.3),
    ]
    scene = SyntheticScene(0, objects, [SceneRelation(1, 0, "on")])
    raster = scene.render()
    # sweep detector seeds until the confusion fires (it is a noise
    # event, so we show the first seed where it happens)
    for seed in range(60):
        detector = SimulatedDetector(DetectorConfig(label_noise=0.35,
                                                    miss_rate=0.0,
                                                    seed=seed))
        labels = [d.label for d in detector.detect(raster, 0)]
        if "bear" in labels:
            print(f"    ground truth: toy on bed; "
                  f"detected labels (seed {seed}): {labels}")
            print("    -> the toy bear was recognized as a bear\n")
            return
    print("    (no confusion within 60 seeds)\n")


def relation_error() -> None:
    print("(c) relationship generation error")
    # a bear figure ON the tv: occlusion makes the detected depth
    # estimates unreliable, so "on" can flip to "in front of"
    objects = [
        SceneObject(0, "tv", Box(40, 50, 30, 24), 0.55),
        SceneObject(1, "toy", Box(46, 40, 12, 14), 0.3),
    ]
    scene = SyntheticScene(1, objects, [SceneRelation(1, 0, "on")])
    pipeline = SGGPipeline(
        SimulatedDetector(DetectorConfig(label_noise=0.0, miss_rate=0.0)),
        RelationPredictor(MOTIFNET),
        SGGConfig(use_tde=False),  # the biased path makes this vivid
    )
    result = pipeline.run(scene)
    names = [d.label for d in result.detections]
    print("    ground truth: {toy, on, tv}; biased prediction:")
    for relation in result.relations[:3]:
        print(f"      {{{names[relation.src]}, {relation.predicate}, "
              f"{names[relation.dst]}}}")
    print()


def main() -> None:
    statement_parsing_error()
    object_detection_error()
    relation_error()


if __name__ == "__main__":
    main()
