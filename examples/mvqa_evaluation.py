"""Evaluate SVQA on the MVQA dataset (the paper's Exp-1 / Table III).

Builds MVQA (13,808-scene pool -> 4,233 images -> 100 complex
questions), runs the full SVQA pipeline, and prints per-type accuracy
and the batch's simulated latency.

Run:  python examples/mvqa_evaluation.py [--fast]

``--fast`` shrinks the pool (1,200 scenes / 400 images) so the example
finishes in a few seconds.
"""

import sys

from repro.core import SVQA
from repro.dataset.mvqa import build_mvqa
from repro.eval.harness import evaluate, format_table, percentage


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        dataset = build_mvqa(seed=5, pool_size=1_200, image_count=400)
    else:
        dataset = build_mvqa()
    print(f"MVQA: {dataset.image_count} images "
          f"(from a {dataset.pool_size}-scene pool), "
          f"{len(dataset.questions)} questions")

    svqa = SVQA(dataset.scenes, dataset.kg)
    svqa.build()
    print(f"merged graph: {svqa.merged.graph.vertex_count} vertices, "
          f"{svqa.merged.graph.edge_count} edges")

    result = evaluate("SVQA", dataset.questions, svqa.answer_many,
                      lambda: svqa.elapsed)
    row = result.summary()
    print()
    print(format_table(
        ["Method", "Latency(Sec.)", "Judgment", "Counting", "Reasoning"],
        [["SVQA", f"{row['latency']:.2f}",
          percentage(row["judgment"]), percentage(row["counting"]),
          percentage(row["reasoning"])]],
        title="Table III — answering complex queries on MVQA "
              "(simulated seconds)",
    ))
    print(f"\noverall accuracy: {percentage(row['overall'])}")

    if result.failures:
        print("\nsample failures (the paper's Fig. 8 error classes):")
        for question, produced in result.failures[:5]:
            print(f"  [{question.question_type.value}] {question.text}")
            print(f"    expected {question.answer!r}, got {produced!r}")


if __name__ == "__main__":
    main()
