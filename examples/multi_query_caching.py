"""Multi-query execution with key-centric caching and scheduling (§V-B).

Answers the same question batch with and without the scope/path cache
and compares simulated latencies — the Exp-5 effect.  Also shows the
frequency-ratio scheduler reordering the batch so cache-friendly
queries run first (Example 6 of the paper).

Run:  python examples/multi_query_caching.py
"""

from repro.core import SVQA, SVQAConfig, schedule_queries
from repro.dataset.kg import build_commonsense_kg
from repro.dataset.mvqa import build_mvqa


def run_batch(dataset, enable_cache: bool) -> tuple[float, list]:
    config = SVQAConfig(
        enable_scope_cache=enable_cache,
        enable_path_cache=enable_cache,
    )
    svqa = SVQA(dataset.scenes, dataset.kg, config)
    svqa.build()
    questions = [q.text for q in dataset.questions]
    before = svqa.elapsed
    answers = svqa.answer_many(questions)
    return svqa.elapsed - before, answers


def main() -> None:
    dataset = build_mvqa(seed=5, pool_size=1_500, image_count=500)
    print(f"{len(dataset.questions)} questions over "
          f"{dataset.image_count} images\n")

    latency_without, answers_plain = run_batch(dataset, enable_cache=False)
    latency_with, answers_cached = run_batch(dataset, enable_cache=True)

    assert [a.value for a in answers_plain] == \
        [a.value for a in answers_cached], "caching must not change answers"

    reduction = 100 * (1 - latency_with / latency_without)
    print(f"latency without cache: {latency_without:7.2f} simulated s")
    print(f"latency with cache:    {latency_with:7.2f} simulated s")
    print(f"reduction:             {reduction:6.1f}%  "
          f"(the paper reports ~48.9% on average)")

    # scheduling: which queries run first?
    svqa = SVQA(dataset.scenes, dataset.kg)
    svqa.build()
    graphs = [svqa.parse_question(q.text) for q in dataset.questions[:10]]
    plan = schedule_queries(graphs)
    print("\nscheduler order for the first 10 questions "
          "(most shared vertices first):")
    for rank, index in enumerate(plan.order[:5]):
        print(f"  {rank + 1}. (score {plan.graph_scores[index]:.4f}) "
              f"{graphs[index].question}")


if __name__ == "__main__":
    main()
