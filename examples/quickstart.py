"""Quickstart: the paper's Example 1, end to end.

An online analytics service holds movie images and a knowledge graph of
character relationships (Figure 1).  SVQA merges both into one graph
and answers the flagship complex question:

    What kind of clothes are worn by the wizard who is most
    frequently hanging out with Harry Potter's girlfriend?

Run:  python examples/quickstart.py
"""

from repro.core import SVQA, SVQAConfig, describe_query_graph
from repro.dataset.kg import build_movie_kg
from repro.dataset.movie import build_movie_scenes
from repro.vision.detector import DetectorConfig


def main() -> None:
    # 1. the data sources: images with identity metadata + the KG
    movie = build_movie_scenes(seed=5)
    kg = build_movie_kg()
    print(f"images: {len(movie.scenes)}   "
          f"knowledge graph: {kg.vertex_count} vertices, "
          f"{kg.edge_count} edges")
    for scene in movie.scenes[:3]:
        print(f"  image {scene.image_id}: {scene.caption}")

    # 2. build the merged graph (scene-graph generation + Algorithm 1)
    config = SVQAConfig(
        detector=DetectorConfig(label_noise=0.0, miss_rate=0.0),
    )
    svqa = SVQA(movie.scenes, kg, config, annotations=movie.annotations)
    merged = svqa.build()
    print(f"\nmerged graph: {merged.graph.vertex_count} vertices, "
          f"{merged.graph.edge_count} edges")

    # 3. decompose the complex question (Algorithm 2)
    question = movie.flagship_question
    query_graph = svqa.parse_question(question)
    print(f"\n{describe_query_graph(query_graph)}")

    # 4. execute the query graph over the merged graph (Algorithm 3)
    answer = svqa.answer_query_graph(query_graph)
    print(f"\nQ: {question}")
    print(f"A: {answer.value}   "
          f"(expected: {movie.flagship_answer}; "
          f"evidence image(s): {answer.supporting_images}; "
          f"simulated latency: {answer.latency:.3f}s)")

    # 5. a few more questions over the same merged graph
    for extra in (
        "Is there a man standing on the grass?",
        "How many men are hanging out with the woman?",
    ):
        result = svqa.answer(extra)
        print(f"Q: {extra}\nA: {result.value}")


if __name__ == "__main__":
    main()
